"""Figure 16-style "crash recovery + coordination avoidance" experiment.

Two questions in one grid, both downstream of the participant-FSM work:

1. **Recovery**: crash a node mid-run (participant or the busiest
   coordinator) with distributed transactions in flight, restart it, and
   let the WAL redo/undo pass (``core/recovery.py``) resolve every in-doubt
   branch.  Columns report what recovery actually found and settled —
   in-doubt votes, begun-unvoted branches, reopened coordinator PREPAREs.

2. **Coordination avoidance**: a slice of the workload
   (``incr_fraction``) is global-counter increments — invariant-confluent
   transactions that bypass 2PC entirely on the fast path.  The
   ``fast_frac`` column is the fraction of would-be-distributed commits
   that avoided coordination.

Every cell is a thin spec over :func:`recovery_spec`; identical fault
timing across systems, same as fig7.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

from repro.core.participant import EDGE_NAMES
from repro.experiments.harness import FigureResult, SYSTEM_LABELS, scaled
from repro.experiments.parallel import raise_failures, run_cells
from repro.experiments.runner import SpecRunResult
from repro.experiments.spec import (
    FaultSpec,
    ProbeSpec,
    ScenarioSpec,
    TopologySpec,
    TraceSpec,
    WorkloadSpec,
)

__all__ = [
    "ALL_KINDS",
    "CRASH_KINDS",
    "EDGE_POINTS",
    "edge_kind",
    "recovery_spec",
    "run",
    "run_grid",
    "summarize",
]

DEFAULT_SYSTEMS = ("marlin",)

FAULT_AT = 3.0
DURATION = 14.0
#: Fraction of transactions that are cross-granule global-counter
#: increments (the coordination-free fast-path population).
INCR_FRACTION = 0.25
#: Fraction of the remaining transactions that also write a second random
#: granule — ordinary writes forced through full 2PC, so there are always
#: distributed transactions in flight when the crash lands.
REMOTE_FRACTION = 0.25

#: Crash schedules.  Node 0 coordinates every distributed transaction whose
#: home key lands in its range; node 1 is a plain participant.
CRASH_KINDS: Dict[str, list] = {
    "crash_participant": [
        {"at": FAULT_AT, "kind": "crash", "node": 1, "rejoin": True,
         "duration": 3.0},
    ],
    "crash_coordinator": [
        {"at": FAULT_AT, "kind": "crash", "node": 0, "rejoin": True,
         "duration": 3.0},
    ],
    # Flickers rejoin *inside* the 2s vote timeout: survivors have not yet
    # terminated the victim's in-flight transactions, so the restart-time
    # WAL pass is what classifies and resolves them (nonzero begun_unvoted
    # / in_doubt / coordinator_open columns).
    "flicker_participant": [
        {"at": FAULT_AT, "kind": "crash", "node": 1, "rejoin": True,
         "duration": 0.5},
        {"at": FAULT_AT + 4.0, "kind": "crash", "node": 2, "rejoin": True,
         "duration": 0.5},
    ],
    "flicker_coordinator": [
        {"at": FAULT_AT, "kind": "crash", "node": 0, "rejoin": True,
         "duration": 0.5},
        {"at": FAULT_AT + 4.0, "kind": "crash", "node": 0, "rejoin": True,
         "duration": 0.5},
    ],
    # Overlapping windows: with both a coordinator and a participant down
    # at once, Cornus-style survivor-side termination can't settle every
    # in-flight transaction — the restart-time WAL recovery pass has to.
    "crash_both": [
        {"at": FAULT_AT, "kind": "crash", "node": 1, "rejoin": True,
         "duration": 3.0},
        {"at": FAULT_AT + 0.2, "kind": "crash", "node": 0, "rejoin": True,
         "duration": 3.0},
    ],
}

#: How long a killed FSM-edge victim stays down before its WAL-recovery
#: restart.  Deliberately *inside* the 2s vote timeout: survivors have not
#: finished terminating the victim's in-flight branches, so the restart-time
#: recovery pass does real classification/resolution work.
EDGE_REJOIN_AFTER = 0.5

#: Which node each role's edge kill targets.  Node 0 coordinates its own
#: clients' cross-granule transactions; node 1 serves as a participant for
#: everyone else's.  (A node plays both roles, so a "decide" kill can land
#: in either context — any journaled transition is a legal crash point.)
VICTIM_BY_ROLE = {"coordinator": 0, "participant": 1}

#: Every (role, edge, phase) fault point: the full FSM-edge kill grid.
EDGE_POINTS: Tuple[Tuple[str, str, str], ...] = tuple(
    (role, edge, phase)
    for role in sorted(EDGE_NAMES)
    for edge in EDGE_NAMES[role]
    for phase in ("before", "after")
)


def edge_kind(role: str, edge: str, phase: str) -> str:
    return f"edge_{role}_{edge}_{phase}"


#: All grid rows: wall-clock crashes plus one cell per FSM-edge kill.
ALL_KINDS: Tuple[str, ...] = tuple(sorted(CRASH_KINDS)) + tuple(
    edge_kind(*point) for point in EDGE_POINTS
)

SLO_P99_S = 0.8
SLO_UNAVAILABILITY_S = 4.0


def recovery_spec(
    system: str,
    crash_kind: str,
    scale: float = 1.0,
    seed: int = 1,
    incr_fraction: float = INCR_FRACTION,
    remote_fraction: float = REMOTE_FRACTION,
    workload: str = "ycsb",
    trace: Optional[TraceSpec] = None,
) -> ScenarioSpec:
    """One (system, crash kind) cell: mixed 2PC + fast-path load, one crash.

    ``crash_kind`` is either a wall-clock schedule from :data:`CRASH_KINDS`
    or an ``edge_<role>_<edge>_<phase>`` FSM-edge kill from
    :data:`EDGE_POINTS`.
    """
    schedule: list = []
    fault_points: list = []
    if crash_kind in CRASH_KINDS:
        schedule = CRASH_KINDS[crash_kind]
    elif crash_kind.startswith("edge_"):
        try:
            role, edge, phase = crash_kind[len("edge_"):].split("_")
            victim = VICTIM_BY_ROLE[role]
        except (ValueError, KeyError):
            raise ValueError(f"malformed edge crash kind {crash_kind!r}")
        fault_points = [
            {
                "node": victim,
                "edge": edge,
                "phase": phase,
                "at": FAULT_AT,
                "rejoin_after": EDGE_REJOIN_AFTER,
            }
        ]
    else:
        raise ValueError(
            f"unknown crash kind {crash_kind!r}; expected one of "
            f"{sorted(ALL_KINDS)}"
        )
    clients = scaled(32, scale, minimum=8)
    # Under TPC-C, ``remote_fraction`` becomes the remote-warehouse mix
    # (NEW-ORDER and PAYMENT both) and ``incr_fraction`` is ignored by the
    # workload — TPC-C has no coordination-free increment population.
    name = f"fig16-{crash_kind}-{system}"
    if workload != "ycsb":
        name = f"fig16-{crash_kind}-{workload}-{system}"
    return ScenarioSpec(
        name=name,
        topology=TopologySpec(nodes=4, coordination=system),
        workload=WorkloadSpec(
            kind=workload,
            clients=clients,
            granules=scaled(1600, scale, minimum=64),
            incr_fraction=incr_fraction,
            remote_fraction=remote_fraction,
        ),
        faults=FaultSpec(
            schedule=schedule,
            fault_points=fault_points,
            failure_detection=True,
        ),
        probes=[
            ProbeSpec(
                name="p99_latency", kind="latency", pct=99.0,
                threshold=SLO_P99_S,
            ),
            ProbeSpec(
                name="unavailability",
                kind="unavailability",
                threshold=SLO_UNAVAILABILITY_S,
            ),
        ],
        trace=trace,
        seed=seed,
        duration=DURATION,
        # Fenced-but-alive victims hold stale views at quiescence; the
        # chaos/recovery tests own the ground-truth invariant assertions.
        check_invariants=False,
    )


def run_grid(
    scale: float = 1.0,
    systems: Sequence[str] = DEFAULT_SYSTEMS,
    seed: int = 1,
    crash_kinds: Optional[Sequence[str]] = None,
    workload: str = "ycsb",
    workers: Optional[int] = None,
    cache=None,
    trace: Optional[TraceSpec] = None,
) -> Dict[Tuple[str, str], SpecRunResult]:
    """The (crash kind x system) grid; same pool/cache semantics as fig7.

    ``trace`` (a :class:`TraceSpec`) turns on deterministic tracing for
    every cell, populating the per-cell ``prepare_s`` / ``decision_s``
    span-summary columns (zero when untraced).  ``workload`` runs the same
    crash grid under ``"tpcc"`` instead of the default ``"ycsb"``.
    """
    kinds = list(crash_kinds) if crash_kinds is not None else list(ALL_KINDS)
    keys = [(kind, system) for kind in kinds for system in systems]
    specs = [
        recovery_spec(
            system, kind, scale=scale, seed=seed, workload=workload,
            trace=trace,
        )
        for kind, system in keys
    ]
    results = run_cells(specs, workers=workers, cache=cache)
    raise_failures(results, context="fig16_recovery")
    return dict(zip(keys, results))


def summarize(results: Dict[Tuple[str, str], SpecRunResult]) -> FigureResult:
    fig = FigureResult(
        "Figure 16",
        "Crash recovery (WAL redo/undo) + coordination-avoidance fraction",
    )
    for (kind, system), result in sorted(results.items()):
        m = result.metrics
        probes = {p.name: p for p in result.probes}
        coord = result.extras.get("coordination", {})
        recovery = result.extras.get("recovery", {})
        spans = result.extras.get("span_summary", {})
        fig.add_row(
            crash=kind,
            system=SYSTEM_LABELS.get(system, system),
            committed=m.total_committed,
            aborted=m.total_aborted,
            recovery_passes=recovery.get("passes", 0),
            in_doubt=recovery.get("in_doubt", 0),
            begun_unvoted=recovery.get("begun_unvoted", 0),
            coordinator_open=recovery.get("coordinator_open", 0),
            recovered_commit=recovery.get("committed", 0),
            recovered_abort=recovery.get("aborted", 0),
            fast_commits=coord.get("fast_path_commits", 0),
            two_pc_commits=coord.get("two_pc_commits", 0),
            fast_frac=coord.get("avoided_fraction", 0.0),
            p99_s=probes["p99_latency"].value,
            unavail_s=probes["unavailability"].value,
            # Traced runs only: total sim time spent in each 2PC phase
            # (zero when the grid ran without a TraceSpec).
            prepare_s=spans.get("2pc.prepare", {}).get("total_s", 0.0),
            decision_s=spans.get("2pc.decision", {}).get("total_s", 0.0),
            slo_ok=result.slo_ok,
        )
    marlin_rows = [
        row for row in fig.rows if row["system"] == SYSTEM_LABELS["marlin"]
    ]
    if marlin_rows:
        fig.findings["marlin_recovery_passes"] = sum(
            row["recovery_passes"] for row in marlin_rows
        )
        fig.findings["marlin_recovered_txns"] = sum(
            row["recovered_commit"] + row["recovered_abort"]
            for row in marlin_rows
        )
        fracs = [row["fast_frac"] for row in marlin_rows if row["fast_frac"]]
        if fracs:
            fig.findings["marlin_mean_avoided_fraction"] = sum(fracs) / len(
                fracs
            )
    return fig


def run(
    scale: float = 1.0,
    systems: Sequence[str] = DEFAULT_SYSTEMS,
    seed: int = 1,
    crash_kinds: Optional[Sequence[str]] = None,
    workload: str = "ycsb",
    results: Optional[Dict[Tuple[str, str], SpecRunResult]] = None,
    workers: Optional[int] = None,
    cache=None,
    trace: Optional[TraceSpec] = None,
) -> FigureResult:
    if results is None:
        results = run_grid(
            scale=scale,
            systems=systems,
            seed=seed,
            crash_kinds=crash_kinds,
            workload=workload,
            workers=workers,
            cache=cache,
            trace=trace,
        )
    return summarize(results)


if __name__ == "__main__":  # pragma: no cover - manual entry point
    print(run(scale=0.25).format_table())
