"""The §6.2 scale-out family: one run per system, shared by Figures 8-10.

Paper parameters (SO8-16 on YCSB): 800 clients, 24 GB table (~200K granules,
~100K migrations), 8 -> 16 nodes at t=10 s.  Scaled defaults here: 100
clients, 12,500 granules (~6,250 migrations), scale-out at t=5 s; see
EXPERIMENTS.md for the scale-factor rationale.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.experiments.harness import ScenarioResult, scaled
from repro.experiments.runner import run_spec
from repro.experiments.spec import ScenarioSpec, scale_out_spec

__all__ = ["DEFAULT_SYSTEMS", "family_spec", "run_family"]

DEFAULT_SYSTEMS = ("marlin", "zk-small", "zk-large")

#: Paper-shape defaults at scale=1.0.
BASE_CLIENTS = 100
BASE_GRANULES = 12_500
SCALE_AT = 5.0


def family_spec(
    system: str,
    scale: float = 1.0,
    workload: str = "ycsb",
    seed: int = 1,
    granules: Optional[int] = None,
    clients: Optional[int] = None,
) -> ScenarioSpec:
    """The §6.2 8->16 scale-out cell for one system, as a spec."""
    return scale_out_spec(
        system,
        initial_nodes=8,
        added_nodes=8,
        clients=clients if clients is not None else BASE_CLIENTS,
        granules=(
            granules if granules is not None else scaled(BASE_GRANULES, scale)
        ),
        scale_at=SCALE_AT,
        tail=5.0,
        workload=workload,
        seed=seed,
        name=f"family-{workload}-{system}",
    )


def run_family(
    scale: float = 1.0,
    systems: Sequence[str] = DEFAULT_SYSTEMS,
    workload: str = "ycsb",
    seed: int = 1,
    granules: Optional[int] = None,
    clients: Optional[int] = None,
) -> Dict[str, ScenarioResult]:
    """Run the 8->16 scale-out scenario once per system.

    ``scale`` shrinks the table (and so the migration volume); the client
    population stays at the paper's saturation point by default — the 2x
    post-scale-out throughput jump of Figure 9 requires the 8-node cluster
    to be overloaded, which is a clients-to-capacity ratio, not a data size.
    Pass ``clients`` explicitly for quick shape tests.
    """
    return {
        system: run_spec(
            family_spec(
                system,
                scale=scale,
                workload=workload,
                seed=seed,
                granules=granules,
                clients=clients,
            )
        )
        for system in systems
    }
