"""Figure 9 — Realtime user-transaction throughput and abort ratio (YCSB).

Paper findings: user throughput climbs to its post-scale-out plateau
(~2x the saturated 8-node level) sooner with Marlin, and Marlin's abort
ratio during reconfiguration stays lower because its migrations are shorter
and conflict less with user transactions.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np

from repro.experiments.family import DEFAULT_SYSTEMS, SCALE_AT, run_family
from repro.experiments.harness import (
    FigureResult,
    ScenarioResult,
    SYSTEM_LABELS,
)

__all__ = ["run", "summarize"]


def summarize(results: Dict[str, ScenarioResult]) -> FigureResult:
    fig = FigureResult(
        "Figure 9", "Realtime throughput of user transactions (YCSB)"
    )
    recovery_time: Dict[str, float] = {}
    reconfig_abort: Dict[str, float] = {}
    for system, result in results.items():
        tput = result.throughput_series()
        aborts = result.abort_series()
        before = [tps for t, tps in tput if 1.0 <= t < SCALE_AT]
        before_mean = float(np.mean(before)) if before else 0.0
        end = result.migration_duration + SCALE_AT
        # Exclude the final (partial) bucket from the after-phase average.
        after = [
            tps for t, tps in tput if end + 1.0 <= t < result.duration - 1.0
        ]
        after_mean = float(np.mean(after)) if after else 0.0
        during = [ratio for t, ratio in aborts if SCALE_AT <= t < end + 1.0]
        during_abort = float(np.mean(during)) if during else 0.0
        # Time (from scale-out start) until throughput first reaches 90% of
        # the after-phase plateau — the paper's "reaches higher level sooner".
        target = 0.9 * after_mean
        reached = next(
            (t for t, tps in tput if t >= SCALE_AT and tps >= target), end
        )
        recovery_time[system] = reached - SCALE_AT
        reconfig_abort[system] = during_abort
        fig.add_row(
            system=SYSTEM_LABELS.get(system, system),
            tput_before=before_mean,
            tput_after=after_mean,
            speedup_after=after_mean / before_mean if before_mean else 0.0,
            abort_ratio_during=during_abort,
            time_to_plateau_s=recovery_time[system],
        )
        fig.rows[-1]["tput_series"] = tput
        fig.rows[-1]["abort_series"] = aborts
    if "marlin" in results:
        for base in results:
            if base == "marlin":
                continue
            label = SYSTEM_LABELS.get(base, base)
            if recovery_time.get("marlin"):
                fig.findings[f"plateau_speedup_vs_{label}"] = (
                    recovery_time[base] / recovery_time["marlin"]
                )
            fig.findings[f"abort_ratio_{label}_minus_marlin"] = (
                reconfig_abort[base] - reconfig_abort["marlin"]
            )
    return fig


def run(
    scale: float = 1.0,
    systems: Sequence[str] = DEFAULT_SYSTEMS,
    seed: int = 1,
    results: Optional[Dict[str, ScenarioResult]] = None,
    clients: Optional[int] = None,
) -> FigureResult:
    if results is None:
        results = run_family(scale=scale, systems=systems, seed=seed, clients=clients)
    return summarize(results)


if __name__ == "__main__":  # pragma: no cover - manual entry point
    print(run(scale=0.25).format_table())
