"""Shared experiment machinery: result containers, tables, client binding.

The canonical scenario (§6.2-§6.4) is *scale-out under load*: a cluster of
``initial_nodes`` serving a static client population doubles at
``scale_at`` seconds, migrating half of every old node's granules to the new
nodes.  Since the spec redesign (ISSUE 3) the scenario itself is data — see
:func:`repro.experiments.spec.scale_out_spec` — and a single runner
(:func:`repro.experiments.runner.run_spec`) owns setup, measurement and
serialization; this module keeps the shared pieces: the calibrated node
parameters, result containers, table formatting and client binding.
``run_scale_out_scenario`` remains as a thin deprecated shim over the spec
path.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.cluster import Cluster
from repro.cluster.cost import CostReport
from repro.engine.node import NodeParams
from repro.workload.client import Client, Router
from repro.workload.tpcc import TpccConfig, TpccWorkload
from repro.workload.ycsb import YcsbConfig, YcsbWorkload

__all__ = [
    "EXP_NODE_PARAMS",
    "FigureResult",
    "ScenarioResult",
    "SYSTEM_LABELS",
    "run_scale_out_scenario",
    "start_clients",
]

#: Calibrated compute-node parameters for all experiments; see
#: EXPERIMENTS.md "Calibration" for the derivation.
EXP_NODE_PARAMS = NodeParams(
    vcpus=4,
    cache_pages=16384,
    keys_per_page=8,
    op_cpu=0.0053,
    interactive_delay=0.0004,
    reconfig_cpu=0.00012,
    migration_workers=8,
    warmup_enabled=True,
    warmup_time_per_granule=0.15,
    group_commit_batch=64,
)

SYSTEM_LABELS = {
    "marlin": "Marlin",
    "zk-small": "S-ZK",
    "zk-large": "L-ZK",
    "fdb": "FDB",
    "lease": "Lease",
}


@dataclass
class ScenarioResult:
    """Everything measured in one run of one system."""

    system: str
    duration: float
    cluster: Cluster
    scale_summaries: List[dict] = field(default_factory=list)

    @property
    def metrics(self):
        return self.cluster.metrics

    @property
    def migration_duration(self) -> float:
        return self.metrics.migration_duration

    @property
    def cost(self) -> CostReport:
        return self.cluster.price(self.duration)

    def throughput_series(self):
        return self.metrics.throughput_series(self.duration)

    def migration_series(self):
        return self.metrics.migration_series(self.duration)

    def abort_series(self):
        return self.metrics.abort_ratio_series(self.duration)

    def latency_series(self, pct=50.0):
        return self.metrics.latency_series(self.duration, pct=pct)


class FigureResult:
    """Rows of one reproduced figure plus headline findings."""

    def __init__(self, figure: str, title: str):
        self.figure = figure
        self.title = title
        self.rows: List[Dict] = []
        self.findings: Dict[str, float] = {}

    def add_row(self, **fields) -> None:
        self.rows.append(dict(fields))

    def to_dict(self, include_series: bool = True) -> Dict:
        """JSON-ready form (the ``python -m repro.experiments`` CLI output)."""
        rows = []
        for row in self.rows:
            row = dict(row)
            if not include_series:
                for key in [k for k in row if k.endswith("series")]:
                    row.pop(key)
            rows.append(row)
        return {
            "figure": self.figure,
            "title": self.title,
            "rows": rows,
            "findings": dict(self.findings),
        }

    def format_table(self) -> str:
        if not self.rows:
            return f"{self.figure}: (no rows)"
        columns = list(self.rows[0])
        widths = {
            c: max(len(c), *(len(_fmt(r.get(c))) for r in self.rows))
            for c in columns
        }
        lines = [f"== {self.figure}: {self.title} =="]
        lines.append("  ".join(c.ljust(widths[c]) for c in columns))
        lines.append("  ".join("-" * widths[c] for c in columns))
        for row in self.rows:
            lines.append(
                "  ".join(_fmt(row.get(c)).ljust(widths[c]) for c in columns)
            )
        if self.findings:
            lines.append("-- findings --")
            for key, value in self.findings.items():
                lines.append(f"  {key}: {_fmt(value)}")
        return "\n".join(lines)


def _fmt(value) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


def start_clients(
    cluster: Cluster,
    count: int,
    workload_kind: str = "ycsb",
    seed: int = 100,
    bind_to_nodes: Optional[Sequence[int]] = None,
    incr_fraction: float = 0.0,
    remote_fraction: float = 0.0,
) -> Tuple[Router, List[Client]]:
    """Closed-loop clients bound round-robin to initial nodes' key ranges.

    Binding each client to one node's contiguous range keeps geo clients
    region-local (§6.5: "each client accessing only local compute nodes").
    """
    assignment = cluster.assignment_from_views()
    router = Router(assignment)
    node_ids = list(bind_to_nodes or cluster.live_node_ids())
    ranges = {}
    for nid in node_ids:
        owned = sorted(
            g for g, owner in assignment.items() if owner == nid
        )
        if not owned:
            # A bound node can legitimately own nothing (more nodes than
            # granules, or everything migrated away); binding a client to an
            # empty range is meaningless, so skip it rather than crash.
            warnings.warn(
                f"start_clients: node {nid} owns no granules; "
                "skipping it in the client binding",
                stacklevel=2,
            )
            continue
        lo = cluster.gmap.granule(owned[0]).lo
        hi = cluster.gmap.granule(owned[-1]).hi
        ranges[nid] = (lo, hi)
    bound_ids = [nid for nid in node_ids if nid in ranges]
    if count and not bound_ids:
        raise ValueError(
            f"start_clients: none of the bound nodes {node_ids} owns any granule"
        )
    clients = []
    for i in range(count):
        nid = bound_ids[i % len(bound_ids)]
        lo, hi = ranges[nid]
        if workload_kind == "ycsb":
            config = (
                YcsbConfig(
                    incr_fraction=incr_fraction,
                    remote_fraction=remote_fraction,
                )
                if incr_fraction or remote_fraction
                else None
            )
            workload = YcsbWorkload(cluster.gmap, config, key_lo=lo, key_hi=hi)
        elif workload_kind == "tpcc":
            # ``remote_fraction`` maps onto TPC-C's remote-warehouse mix:
            # it overrides *both* remote_new_order and remote_payment (the
            # spec's 10%/15% split collapses to one knob so a sweep axis
            # means the same thing under either workload); 0.0 keeps the
            # calibrated defaults rather than forcing an all-local mix.
            config = (
                TpccConfig(
                    remote_new_order=remote_fraction,
                    remote_payment=remote_fraction,
                )
                if remote_fraction
                else None
            )
            workload = TpccWorkload(
                cluster.gmap,
                config,
                warehouse_lo=cluster.gmap.granule_of(lo),
                warehouse_hi=cluster.gmap.granule_of(hi - 1) + 1,
            )
        else:
            raise ValueError(f"unknown workload {workload_kind!r}")
        client = Client(
            cluster.sim,
            cluster.network,
            cluster.nodes[nid].region,
            router,
            workload,
            cluster.metrics,
            cluster.gmap,
            seed=seed + i,
        )
        client.start()
        clients.append(client)
    cluster.client_count = count
    return router, clients


def run_scale_out_scenario(
    system: str,
    *,
    initial_nodes: int = 8,
    added_nodes: int = 8,
    clients: int = 100,
    granules: int = 12_500,
    keys_per_granule: int = 64,
    scale_at: float = 5.0,
    tail: float = 10.0,
    workload: str = "ycsb",
    regions: Tuple[str, ...] = ("us-west",),
    seed: int = 1,
    node_params: Optional[NodeParams] = None,
    check_invariants: bool = True,
    fault_schedule=None,
    failure_detection: bool = False,
    chaos_settle: float = 1.0,
) -> ScenarioResult:
    """One full scale-out run (§6.2/§6.3 shape) for one system.

    .. deprecated::
        This is a thin shim over the declarative spec API — it builds a
        :func:`repro.experiments.spec.scale_out_spec` and hands it to
        :func:`repro.experiments.runner.run_spec`.  New code should build
        specs directly (they serialize, sweep and probe); the shim is kept so
        existing call sites and notebooks keep working.

    The run ends ``tail`` seconds after the last migration commits, so every
    system is measured over its own reconfiguration window plus a stable
    after-phase (mirroring the paper's fixed-duration plots).

    ``fault_schedule`` (a :class:`repro.chaos.FaultSchedule`) runs the whole
    scenario under chaos: the schedule starts with the cluster, the run is
    extended past the schedule's horizon plus ``chaos_settle`` seconds, and
    the quiescence invariants are asserted once every fault has cleared and
    recovery quiesced.  Chaotic scale-outs usually want
    ``failure_detection=True`` so fenced nodes actually get failed over.
    """
    from repro.experiments.runner import run_spec
    from repro.experiments.spec import scale_out_spec

    spec = scale_out_spec(
        system,
        initial_nodes=initial_nodes,
        added_nodes=added_nodes,
        clients=clients,
        granules=granules,
        keys_per_granule=keys_per_granule,
        scale_at=scale_at,
        tail=tail,
        workload=workload,
        regions=tuple(regions),
        seed=seed,
        node_params=node_params,
        check_invariants=check_invariants,
        fault_schedule=fault_schedule,
        failure_detection=failure_detection,
        chaos_settle=chaos_settle,
    )
    return run_spec(spec)


def scaled(value: float, scale: float, minimum: int = 1) -> int:
    """Scale an integer experiment parameter, keeping it at least ``minimum``."""
    return max(minimum, int(round(value * scale)))
