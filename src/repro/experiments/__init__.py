"""Per-figure reproduction harness (§6) on a declarative spec API.

One module per evaluation figure; each exposes ``run(scale=..., seed=...)``
returning a :class:`repro.experiments.harness.FigureResult` whose
``format_table()`` prints the same rows/series the paper reports.  The
``scale`` knob shrinks clients/granules proportionally (see EXPERIMENTS.md
for the scale-factor discussion); ratios between systems — the reproduction
target — are stable across scales.

Every figure run goes through one executor: a figure builds
:class:`~repro.experiments.spec.ScenarioSpec` objects (topology + workload +
phase timeline + fault schedule + SLO probes, all JSON round-trippable) and
hands them to :func:`~repro.experiments.runner.run_spec`;
:class:`~repro.experiments.spec.Sweep` expands a base spec over named axes
into the full grid.  ``python -m repro.experiments`` lists and runs figures
and ad-hoc spec files from the command line.  See EXPERIMENTS.md for the
spec format and calibration notes.
"""

from repro.experiments import (
    detector_sweep,
    fig7,
    fig8,
    fig9,
    fig10,
    fig11,
    fig12,
    fig13,
    fig14,
    fig15,
    fig16_recovery,
    fig17_replication,
)
from repro.experiments.harness import (
    EXP_NODE_PARAMS,
    FigureResult,
    ScenarioResult,
    run_scale_out_scenario,
)
from repro.experiments.parallel import (
    CellFailure,
    PortableRunResult,
    ProcessPoolRunner,
    run_cells,
)
from repro.experiments.runner import SpecRunResult, run_spec
from repro.experiments.spec import (
    FaultSpec,
    PhaseSpec,
    ProbeSpec,
    ScenarioSpec,
    Sweep,
    TopologySpec,
    WorkloadSpec,
    scale_out_spec,
)

#: CLI-runnable experiments: name -> module exposing ``run(scale=, seed=, ...)``.
FIGURES = {
    "fig7": fig7,
    "fig8": fig8,
    "fig9": fig9,
    "fig10": fig10,
    "fig11": fig11,
    "fig12": fig12,
    "fig13": fig13,
    "fig14": fig14,
    "fig15": fig15,
    "fig16_recovery": fig16_recovery,
    "fig17_replication": fig17_replication,
    "detector_sweep": detector_sweep,
}

__all__ = [
    "CellFailure",
    "EXP_NODE_PARAMS",
    "FIGURES",
    "FaultSpec",
    "FigureResult",
    "PhaseSpec",
    "PortableRunResult",
    "ProbeSpec",
    "ProcessPoolRunner",
    "ScenarioResult",
    "ScenarioSpec",
    "SpecRunResult",
    "Sweep",
    "TopologySpec",
    "WorkloadSpec",
    "detector_sweep",
    "fig7",
    "fig8",
    "fig9",
    "fig10",
    "fig11",
    "fig12",
    "fig13",
    "fig14",
    "fig15",
    "fig16_recovery",
    "fig17_replication",
    "run_cells",
    "run_scale_out_scenario",
    "run_spec",
    "scale_out_spec",
]
