"""Per-figure reproduction harness (§6).

One module per evaluation figure; each exposes ``run(scale=..., seed=...)``
returning a :class:`repro.experiments.harness.FigureResult` whose
``format_table()`` prints the same rows/series the paper reports.  The
``scale`` knob shrinks clients/granules proportionally (see EXPERIMENTS.md
for the scale-factor discussion); ratios between systems — the reproduction
target — are stable across scales.
"""

from repro.experiments import (
    fig8,
    fig9,
    fig10,
    fig11,
    fig12,
    fig13,
    fig14,
    fig15,
)
from repro.experiments.harness import (
    EXP_NODE_PARAMS,
    FigureResult,
    ScenarioResult,
    run_scale_out_scenario,
)

__all__ = [
    "EXP_NODE_PARAMS",
    "FigureResult",
    "ScenarioResult",
    "fig8",
    "fig9",
    "fig10",
    "fig11",
    "fig12",
    "fig13",
    "fig14",
    "fig15",
    "run_scale_out_scenario",
]
