"""Group commit (§5).

"We leverage group commit to reduce the storage access overhead by batching
log records from multiple transactions and committing them through a single
log operation."  Submitted records accumulate while a flush RPC is in flight;
each flush performs one (conditional) ``append_batch`` against the node's WAL
under the node's log gate, so group commit and reconfiguration transactions
never race on the same expected LSN locally — a genuine CAS failure therefore
always means a *cross-node* modification.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional, Tuple

from repro.sim.core import Future, Timeout
from repro.storage.log import AppendResult, RecordKind

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine.node import ComputeNode

__all__ = ["GroupCommitter"]


class GroupCommitter:
    """Batches commit records for one WAL and flushes them with Append@LSN."""

    __slots__ = (
        "node", "log_name", "max_batch", "conditional", "_pending",
        "_wakeup", "_running", "_proc", "batches_flushed",
        "records_flushed", "cas_failures",
    )

    def __init__(
        self,
        node: "ComputeNode",
        log_name: str,
        max_batch: int = 64,
        conditional: bool = True,
    ):
        self.node = node
        self.log_name = log_name
        self.max_batch = max_batch
        #: Marlin uses conditional appends (TryLog); converged baselines own
        #: their WALs exclusively and append unconditionally.
        self.conditional = conditional
        self._pending: List[Tuple[str, RecordKind, tuple, Future]] = []
        self._wakeup: Optional[Future] = None
        self._running = False
        self._proc = None
        self.batches_flushed = 0
        self.records_flushed = 0
        self.cas_failures = 0

    def start(self) -> None:
        if self._running:
            return
        self._running = True
        self._proc = self.node.sim.spawn(
            self._flush_loop(), name=f"group-commit:{self.log_name}", daemon=True
        )

    def stop(self) -> None:
        self._running = False
        if self._proc is not None:
            self._proc.kill()
            self._proc = None
        for _txn, _kind, _entries, fut in self._pending:
            if not fut.done:
                fut.fail(RuntimeError("group committer stopped"))
        self._pending.clear()

    def submit(self, txn_id: str, kind: RecordKind, entries: tuple) -> Future:
        """Enqueue one record; the future resolves with its AppendResult."""
        fut = self.node.sim.event(name=f"gc:{txn_id}")
        self._pending.append((txn_id, kind, entries, fut))
        if self._wakeup is not None and not self._wakeup.done:
            self._wakeup.resolve()
        return fut

    def _flush_loop(self):
        while self._running:
            if not self._pending:
                self._wakeup = self.node.sim.event(name=f"gc-wake:{self.log_name}")
                yield self._wakeup
                continue
            batch = self._pending[: self.max_batch]
            del self._pending[: len(batch)]
            yield from self._flush(batch)

    def _flush(self, batch):
        node = self.node
        gate = node.log_gate(self.log_name)
        tracer = node.tracer
        sid = 0
        if tracer is not None:
            sid = tracer.begin(
                node.address, "gc_flush",
                args={"log": self.log_name, "batch": len(batch)},
            )
        yield gate.acquire()
        try:
            expected = node.lsn_tracker.get(self.log_name) if self.conditional else None
            bodies = [(txn, kind, entries) for txn, kind, entries, _fut in batch]
            result: AppendResult = yield node.storage_call(
                "append_batch", self.log_name, bodies, expected, log=self.log_name
            )
            node.lsn_tracker[self.log_name] = result.lsn
            self.batches_flushed += 1
            if result.ok:
                self.records_flushed += len(batch)
                if tracer is not None:
                    tracer.count("wal.appends", len(batch))
                # Replication rides the flush batch (piggyback ships exactly
                # this batch; sync_quorum blocks the acks below on follower
                # acks — commit futures resolve only after the quorum).
                if node.replicator is not None:
                    yield from node.replicator.on_wal_append(
                        node, result.lsn, bodies
                    )
            else:
                self.cas_failures += 1
            if sid:
                tracer.end(sid, {"ok": int(result.ok)})
                sid = 0
            for _txn, _kind, _entries, fut in batch:
                if not fut.done:
                    fut.resolve(result)
        finally:
            gate.release()
            if sid:
                tracer.end(sid)
