"""Compute-layer OLTP engine substrate (the paper's Sundial-derived testbed, §5).

Stateless compute nodes with a transaction manager (2PL NO_WAIT concurrency
control), a clock-replacement cache manager, group commit, and granule-based
data partitioning.  Coordination behaviour (Marlin vs. an external service) is
plugged in as a *runtime* — see ``repro.core`` and ``repro.coord``.
"""

from repro.engine.buffer import MISS, CacheManager
from repro.engine.granule import GranuleMap, contiguous_assignment, rebalance_plan
from repro.engine.locks import LockConflict, LockTable
from repro.engine.txn import (
    AbortReason,
    TxnAborted,
    TxnContext,
    TxnStatus,
    WrongNodeError,
)

__all__ = [
    "AbortReason",
    "CacheManager",
    "GranuleMap",
    "LockConflict",
    "LockTable",
    "MISS",
    "TxnAborted",
    "TxnContext",
    "TxnStatus",
    "WrongNodeError",
    "contiguous_assignment",
    "rebalance_plan",
]
