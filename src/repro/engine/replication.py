"""Per-granule replica sets: WAL shipping from primaries to followers.

Marlin's engine migrates granules but never replicates them, so every crash
cell measured control-plane recovery while silently assuming zero data loss.
This module adds the data-plane half: each node (as *primary* for the
granules it owns) ships its GLog records to a seeded-placement set of
follower nodes, and failover promotes the most-caught-up follower instead of
replaying ownership from the storage service.

Three ship modes trade commit latency against data loss (RPO):

* ``sync_quorum`` — the group-commit flush blocks until ``quorum - 1``
  followers acknowledge the batch (the primary itself is the remaining
  member of the quorum).  Every client-acked byte is on at least ``quorum``
  replicas, so RPO is 0 whenever at most ``factor - quorum`` replicas die.
* ``async`` — records are acked immediately and shipped in the background
  every ``lag_budget`` seconds; a crash loses up to one lag window of
  acked bytes.
* ``piggyback`` — each ``gc_flush`` batch is forwarded to the followers as
  a fire-and-forget copy of the very batch that was just appended, so
  replication costs no extra storage flushes and never blocks the commit;
  a crash loses only the ships in flight.

Everything here is gated on the ``is not None`` hook idiom: a cluster built
without a :class:`ReplicationSpec` never touches this module, keeping
replication-off seeded runs byte-identical to the pre-replication goldens.
"""

from __future__ import annotations

import hashlib
from dataclasses import asdict, dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Set, Tuple

from repro.engine.node import GTABLE, glog_name
from repro.sim.core import Timeout
from repro.sim.rpc import RemoteError, RpcError, RpcTimeout
from repro.storage.log import Delete, Put, RecordKind

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cluster.cluster import Cluster
    from repro.engine.node import ComputeNode

__all__ = [
    "REPLICATION_MODES",
    "ReplicaManager",
    "ReplicaTail",
    "ReplicationSpec",
    "planned_followers",
    "record_bytes",
]

REPLICATION_MODES = ("sync_quorum", "async", "piggyback")


@dataclass(frozen=True, slots=True)
class ReplicationSpec:
    """How every primary in the cluster replicates its WAL.

    ``factor`` counts the primary itself, so ``factor=3`` means one primary
    plus two followers; ``quorum`` also counts the primary, so the
    ``sync_quorum`` flush waits for ``quorum - 1`` follower acks.
    """

    factor: int = 3
    mode: str = "sync_quorum"
    quorum: int = 2
    #: ``async`` ship interval: acked-but-unshipped records older than this
    #: are the mode's RPO exposure.
    lag_budget: float = 0.05
    #: Per-ship RPC timeout before a follower is retried (sync) or the
    #: batch is dropped for that follower (async / piggyback).
    ack_timeout: float = 1.0

    def __post_init__(self):
        if self.mode not in REPLICATION_MODES:
            raise ValueError(
                f"unknown replication mode {self.mode!r}; "
                f"expected one of {REPLICATION_MODES}"
            )
        if self.factor < 2:
            raise ValueError("replication factor must be >= 2 (primary + 1)")
        if not 1 <= self.quorum <= self.factor:
            raise ValueError(
                f"quorum {self.quorum} outside [1, factor={self.factor}]"
            )
        if self.lag_budget <= 0:
            raise ValueError("lag_budget must be positive")

    def to_dict(self) -> Dict[str, object]:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "ReplicationSpec":
        return cls(**data)


def record_bytes(kind: RecordKind, entries: tuple) -> int:
    """Deterministic size model for one WAL record (header + per-entry).

    The simulator never materialises real bytes; RPO accounting only needs a
    size that is stable across runs and monotone in record content.
    """
    return 32 + 18 * len(entries)


class ReplicaTail:
    """One follower's received copy of one primary's WAL.

    Applies shipped records exactly the way a catching-up node folds missed
    log records (:meth:`MarlinRuntime._apply_records`): COMMIT_DATA folds
    immediately, VOTE_YES is staged until its decision record arrives, and
    only the GTable entries are materialised — user writes count toward
    ``bytes_received`` (the RPO ledger) but need no follower-side state.
    """

    __slots__ = (
        "follower_id", "primary_id", "acked_lsn", "bytes_received",
        "gtable", "pending", "applied_txns",
    )

    def __init__(self, follower_id: int, primary_id: int):
        self.follower_id = follower_id
        self.primary_id = primary_id
        #: Highest primary-WAL LSN this follower has acknowledged.
        self.acked_lsn = 0
        #: Cumulative WAL bytes received (compared against the primary's
        #: acked-byte ledger at failover: the difference is the lost tail).
        self.bytes_received = 0
        #: Follower's replica of the primary's GTable partition.
        self.gtable: Dict[int, int] = {}
        #: VOTE_YES entries staged until a decision record ships.
        self.pending: Dict[str, tuple] = {}
        #: Txn ids whose COMMIT_DATA / commit decision reached this replica
        #: (the quorum-safety invariant is checked against this set).
        self.applied_txns: Set[str] = set()

    def apply(self, lsn: int, records: tuple) -> int:
        """Fold one shipped batch; idempotent via the LSN high-water mark.

        A batch with ``lsn`` at or below the high-water mark is a duplicate
        retry and is dropped whole; a gap (an async ship the partition ate)
        simply leaves ``bytes_received`` short — which is exactly the
        divergence the RPO probe measures.
        """
        if lsn <= self.acked_lsn:
            return self.acked_lsn
        for txn_id, kind, entries, nbytes in records:
            self.bytes_received += nbytes
            if kind is RecordKind.COMMIT_DATA:
                self._fold(entries)
                self.applied_txns.add(txn_id)
            elif kind is RecordKind.VOTE_YES:
                self.pending[txn_id] = entries
            elif kind is RecordKind.DECISION_COMMIT:
                staged = self.pending.pop(txn_id, None)
                if staged is not None:
                    self._fold(staged)
                self.applied_txns.add(txn_id)
            elif kind is RecordKind.DECISION_ABORT:
                self.pending.pop(txn_id, None)
        self.acked_lsn = lsn
        return self.acked_lsn

    def _fold(self, entries: tuple) -> None:
        for entry in entries:
            if isinstance(entry, Put):
                if entry.table == GTABLE:
                    self.gtable[entry.key] = entry.value
            elif isinstance(entry, Delete):
                if entry.table == GTABLE:
                    self.gtable.pop(entry.key, None)


def _placement_rank(seed: int, primary_id: int, candidate: int) -> str:
    token = f"{seed}:{primary_id}:{candidate}".encode()
    return hashlib.sha256(token).hexdigest()


def planned_followers(
    seed: int, primary_id: int, node_ids, factor: int
) -> Tuple[int, ...]:
    """The follower set placement will choose — computable without a cluster.

    Experiments use this to build fault schedules that target a primary's
    actual ship paths (e.g. ``replica_link_degradation``) while staying pure
    data: same seed and membership -> same placement as ``attach``.
    """
    candidates = sorted(c for c in node_ids if c != primary_id)
    return tuple(
        sorted(
            candidates, key=lambda c: _placement_rank(seed, primary_id, c)
        )[: factor - 1]
    )


class ReplicaManager:
    """Cluster-level replication state: placement, tails, the ship paths.

    One manager per cluster (mirroring ``MetricsCollector``); every node
    gets ``node.replicator = manager`` at attach so the hot-path hooks stay
    a single attribute test when replication is off.
    """

    __slots__ = (
        "spec", "cluster", "seed", "followers", "followed_by", "tails",
        "acked_lsn", "acked_bytes", "ships", "acks", "ship_failures",
        "bytes_shipped", "quorum_stalls", "promotions", "reconciles",
        "_buffers", "_buffer_lsn",
    )

    def __init__(self, spec: ReplicationSpec, cluster: "Cluster"):
        self.spec = spec
        self.cluster = cluster
        self.seed = cluster.config.seed
        #: primary id -> its follower ids (seeded placement, fixed at attach).
        self.followers: Dict[int, Tuple[int, ...]] = {}
        #: follower id -> primary ids it follows (reconcile walks this).
        self.followed_by: Dict[int, List[int]] = {}
        self.tails: Dict[Tuple[int, int], ReplicaTail] = {}
        #: Primary-side ledgers: last client-acked WAL LSN / cumulative
        #: client-acked WAL bytes.  ``acked - received`` at failover is the
        #: lost tail the ``rpo_bytes`` probe reports.
        self.acked_lsn: Dict[int, int] = {}
        self.acked_bytes: Dict[int, int] = {}
        self.ships = 0
        self.acks = 0
        self.ship_failures = 0
        self.bytes_shipped = 0
        #: sync_quorum flushes that had to wait on at least one retry round.
        self.quorum_stalls = 0
        self.promotions = 0
        self.reconciles = 0
        #: ``async`` mode: records acked but not yet shipped, per primary.
        self._buffers: Dict[int, List[tuple]] = {}
        self._buffer_lsn: Dict[int, int] = {}

    # -- placement & attach ------------------------------------------------------

    def attach(self, node: "ComputeNode") -> None:
        """Wire one node in: RPC handler, placement, tails, ship loop."""
        node.endpoint.register("repl_ship", self._make_ship_handler(node))
        node.replicator = self
        nid = node.node_id
        chosen = planned_followers(
            self.seed, nid, self.cluster.nodes, self.spec.factor
        )
        self.followers[nid] = chosen
        self.acked_lsn.setdefault(nid, node.lsn_tracker.get(node.glog, 0))
        self.acked_bytes.setdefault(nid, 0)
        self._buffers.setdefault(nid, [])
        owned = {g: o for g, o in node.gtable.items() if o == nid}
        for fid in chosen:
            tail = ReplicaTail(fid, nid)
            tail.acked_lsn = self.acked_lsn[nid]
            tail.gtable = dict(owned)
            self.tails[(fid, nid)] = tail
            self.followed_by.setdefault(fid, []).append(nid)
        if self.spec.mode == "async":
            self.start_ship_loop(node)

    def _make_ship_handler(self, node: "ComputeNode"):
        def _h_repl_ship(primary_id: int, lsn: int, records: tuple) -> int:
            tail = self.tails.get((node.node_id, primary_id))
            if tail is None:
                return 0
            acked = tail.apply(lsn, records)
            tracer = node.tracer
            if tracer is not None:
                tracer.count("repl.acks")
                tracer.instant(
                    node.address, "repl:ack",
                    args={"from": primary_id, "lsn": lsn},
                )
            return acked

        return _h_repl_ship

    def start_ship_loop(self, node: "ComputeNode") -> None:
        """(Re)start the ``async`` drain loop; killed by ``freeze`` with the
        node's other daemons, so a restarting primary respawns it via
        :meth:`reconcile`."""
        node.spawn(self._ship_loop(node), name=f"repl-ship-loop-{node.node_id}")

    # -- primary-side ship path ---------------------------------------------------

    def on_wal_append(self, node: "ComputeNode", lsn: int, bodies) -> "object":
        """Hook: ``bodies`` (``(txn_id, kind, entries)`` tuples) just landed
        on ``node``'s own GLog at batch-end LSN ``lsn``.

        Called from both :meth:`GroupCommitter._flush` and single-record
        ``try_log`` successes on the node's own log, so follower GTable
        views track migrations and 2PC votes, not just user commits.
        Generator; ``sync_quorum`` is the only mode that actually blocks.
        """
        payload = tuple(
            (txn_id, kind, entries, record_bytes(kind, entries))
            for txn_id, kind, entries in bodies
        )
        nbytes = sum(rec[3] for rec in payload)
        mode = self.spec.mode
        if mode == "sync_quorum":
            yield from self._ship_quorum(node, lsn, payload)
            self.acked_lsn[node.node_id] = lsn
            self.acked_bytes[node.node_id] += nbytes
            return
        # async / piggyback ack immediately: the acked-byte ledger grows
        # before the bytes are on any follower — the RPO exposure.
        self.acked_lsn[node.node_id] = lsn
        self.acked_bytes[node.node_id] += nbytes
        if mode == "async":
            self._buffers[node.node_id].extend(payload)
            self._buffer_lsn[node.node_id] = lsn
        else:  # piggyback: forward this very batch, fire-and-forget
            for fid in self.followers.get(node.node_id, ()):
                node.spawn(
                    self._ship_best_effort(node, fid, lsn, payload),
                    name=f"repl-piggyback-{node.node_id}-{fid}",
                )

    def _ship_to(self, node: "ComputeNode", fid: int, lsn: int, payload):
        tracer = node.tracer
        sid = 0
        if tracer is not None:
            tracer.count("repl.ships")
            sid = tracer.begin(
                node.address, "repl:ship",
                args={"to": fid, "lsn": lsn, "records": len(payload)},
            )
        self.ships += 1
        try:
            yield node.peer_call(
                fid, "repl_ship", node.node_id, lsn, payload,
                timeout=self.spec.ack_timeout,
            )
            self.acks += 1
            self.bytes_shipped += sum(rec[3] for rec in payload)
            if sid:
                tracer.end(sid, {"ok": 1})
                sid = 0
        finally:
            if sid:
                tracer.end(sid, {"ok": 0})

    def _ship_best_effort(self, node, fid: int, lsn: int, payload):
        try:
            yield from self._ship_to(node, fid, lsn, payload)
        except (RpcTimeout, RpcError, RemoteError):
            self.ship_failures += 1

    def _ship_quorum(self, node: "ComputeNode", lsn: int, payload):
        """Ship to every follower; return once ``quorum - 1`` acked.

        Laggards keep retrying in the background until they ack or the
        quorum event makes further retries pointless for *this* batch (a
        gap a later batch or :meth:`reconcile` closes); the commit flush
        stays blocked only for the fastest ``quorum - 1``.
        """
        followers = self.followers.get(node.node_id, ())
        needed = min(self.spec.quorum - 1, len(followers))
        if needed <= 0 or not followers:
            return
        state = {"acks": 0}
        done = node.sim.event(name=f"repl-quorum-{node.node_id}-{lsn}")

        def ship_one(fid: int):
            backoff = 0.002
            while True:
                try:
                    yield from self._ship_to(node, fid, lsn, payload)
                    break
                except (RpcTimeout, RpcError, RemoteError):
                    self.ship_failures += 1
                    if done.done:
                        return  # quorum met; stop retrying this batch
                    self.quorum_stalls += 1
                    yield Timeout(backoff * (0.5 + node.sim.rng.random()))
                    backoff = min(backoff * 2, 0.2)
            state["acks"] += 1
            if state["acks"] >= needed and not done.done:
                done.resolve()

        for fid in followers:
            node.spawn(ship_one(fid), name=f"repl-sync-{node.node_id}-{fid}")
        yield done

    def _ship_loop(self, node: "ComputeNode"):
        """``async`` mode: drain the acked-but-unshipped buffer on a budget."""
        while True:
            yield Timeout(self.spec.lag_budget)
            buffer = self._buffers.get(node.node_id)
            if not buffer:
                continue
            payload = tuple(buffer)
            buffer.clear()
            lsn = self._buffer_lsn.get(node.node_id, 0)
            for fid in self.followers.get(node.node_id, ()):
                node.spawn(
                    self._ship_best_effort(node, fid, lsn, payload),
                    name=f"repl-async-{node.node_id}-{fid}",
                )

    # -- failover promotion -------------------------------------------------------

    def best_follower(self, dead_id: int) -> Optional[int]:
        """Most-caught-up *surviving* follower of ``dead_id`` (ties: lowest
        id, so concurrent detectors elect the same candidate)."""
        best: Optional[int] = None
        best_key = None
        for fid in self.followers.get(dead_id, ()):
            node = self.cluster.nodes.get(fid)
            if node is None or node.frozen:
                continue
            tail = self.tails.get((fid, dead_id))
            if tail is None:
                continue
            key = (tail.acked_lsn, -fid)
            if best_key is None or key > best_key:
                best_key = key
                best = fid
        return best

    def plan_promotion(
        self, dead_id: int
    ) -> Optional[Tuple[List[int], int, int]]:
        """``(granules, follower_id, lost_bytes)`` for promoting the most
        caught-up follower of ``dead_id``, or None if no follower survives
        (the caller falls back to the storage-replay failover)."""
        best = self.best_follower(dead_id)
        if best is None:
            return None
        tail = self.tails[(best, dead_id)]
        granules = sorted(g for g, o in tail.gtable.items() if o == dead_id)
        lost = max(0, self.acked_bytes.get(dead_id, 0) - tail.bytes_received)
        return granules, best, lost

    def note_promoted(self, dead_id: int, new_owner: int, granules) -> None:
        """Record a completed promotion and propagate the ownership flip to
        the *new* owner's follower tails.

        RecoveryMigrTxn fences through the dead node's GLog, so the
        ``Put(GTABLE, g, new_owner)`` records never transit the new owner's
        own WAL; without this fold the new owner's followers would not
        cover the promoted granules at its own later failover.
        """
        self.promotions += 1
        for fid in self.followers.get(new_owner, ()):
            tail = self.tails.get((fid, new_owner))
            if tail is not None:
                for g in granules:
                    tail.gtable[g] = new_owner

    # -- restart reconciliation ---------------------------------------------------

    def reconcile(self, node: "ComputeNode"):
        """Bring a restarting node's follower tails back in sync.

        For every primary this node follows, re-read the authoritative
        ownership view (the live primary's ``scan_gtable``, falling back to
        a storage replay of its GLog if it is unreachable) and fast-forward
        the byte ledger — the gap the node slept through is *not* lost data,
        the primary still has it.  Also respawns the ``async`` ship loop
        that ``freeze`` killed.
        """
        if self.spec.mode == "async":
            self.start_ship_loop(node)
        for primary_id in self.followed_by.get(node.node_id, ()):
            tail = self.tails.get((node.node_id, primary_id))
            if tail is None:
                continue
            glog = glog_name(primary_id)
            try:
                snapshot = yield node.peer_call(
                    primary_id, "scan_gtable",
                    timeout=node.params.rpc_timeout,
                )
            except (RpcTimeout, RpcError, RemoteError):
                end = yield node.storage_call("log_end_lsn", glog, log=glog)
                replayed = yield node.storage_call(
                    "scan_table", GTABLE, glog, end, log=glog
                )
                snapshot = {
                    g: o for g, o in replayed.items() if o == primary_id
                }
            tail.gtable = dict(snapshot)
            tail.acked_lsn = self.acked_lsn.get(primary_id, tail.acked_lsn)
            tail.bytes_received = self.acked_bytes.get(
                primary_id, tail.bytes_received
            )
            tail.pending.clear()
            self.reconciles += 1

    # -- reporting ----------------------------------------------------------------

    def stats(self) -> Dict[str, object]:
        return {
            "mode": self.spec.mode,
            "factor": self.spec.factor,
            "quorum": self.spec.quorum,
            "ships": self.ships,
            "acks": self.acks,
            "ship_failures": self.ship_failures,
            "bytes_shipped": self.bytes_shipped,
            "quorum_stalls": self.quorum_stalls,
            "promotions": self.promotions,
            "reconciles": self.reconciles,
        }
