"""Two-phase locking: NO_WAIT for user transactions, waiting for reconfig.

"By default, all transactions follow serializable isolation through the
NO_WAIT protocol which avoids deadlocks": a conflicting user lock request
aborts the requester immediately instead of blocking.  Reconfiguration
transactions, however, *wait* — §4.4.1: "an ongoing user transaction on N2
holds a write lock on G3, blocking the MigrationTxn from acquiring its
required write lock until the user transaction commits" — via
:meth:`LockTable.acquire_async`, which queues FIFO with a timeout (the
deadlock bound).  Queued waiters also block new NO_WAIT acquisitions, so a
migration cannot be starved by a stream of user readers.

Lock keys are opaque tuples — user records lock ``(table, key)``, GTable
entries lock ``("gtable", gid)``.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Optional, Set, Tuple

__all__ = ["LockConflict", "LockTable"]


class LockConflict(Exception):
    """NO_WAIT: raised instead of blocking on a conflicting lock."""

    def __init__(self, key, holders: Set[str]):
        super().__init__(f"lock conflict on {key!r}, held by {sorted(holders)}")
        self.key = key
        self.holders = set(holders)


class _Lock:
    __slots__ = ("exclusive", "holders", "waiters")

    def __init__(self):
        self.exclusive = False
        self.holders: Set[str] = set()
        #: FIFO of (txn_id, exclusive, future) waiting-mode requests.
        self.waiters: Deque[tuple] = deque()


class LockTable:
    """Per-node lock manager.  Shared/exclusive modes, strict 2PL release."""

    __slots__ = (
        "sim", "_locks", "_held_by_txn", "conflicts", "acquisitions",
        "waits", "tracer", "track", "_wait_spans",
    )

    def __init__(self, sim=None):
        self.sim = sim
        self._locks: Dict[object, _Lock] = {}
        self._held_by_txn: Dict[str, Set[object]] = {}
        self.conflicts = 0
        self.acquisitions = 0
        self.waits = 0
        #: Optional :class:`repro.obs.Tracer` + track name (the owning
        #: node's address), attached by the cluster alongside ``node.tracer``.
        self.tracer = None
        self.track = ""
        #: Open lock-wait spans keyed by waiter future (traced runs only;
        #: stays empty — one falsy check — when tracing is off).
        self._wait_spans: Dict[object, int] = {}

    def acquire(self, txn_id: str, key: object, exclusive: bool) -> None:
        """Grant the lock or raise :class:`LockConflict` (NO_WAIT)."""
        lock = self._locks.get(key)
        if lock is None:
            lock = self._locks[key] = _Lock()
        if txn_id in lock.holders:
            if exclusive and not lock.exclusive:
                # Upgrade S -> X permitted only for a sole holder.
                if len(lock.holders) > 1 or lock.waiters:
                    self.conflicts += 1
                    raise LockConflict(key, lock.holders - {txn_id})
                lock.exclusive = True
            self.acquisitions += 1
            return
        blocked = bool(lock.waiters) or (
            lock.holders and (exclusive or lock.exclusive)
        )
        if blocked:
            self.conflicts += 1
            raise LockConflict(key, lock.holders or {w[0] for w in lock.waiters})
        self._grant(lock, txn_id, key, exclusive)

    def acquire_async(
        self,
        txn_id: str,
        key: object,
        exclusive: bool,
        timeout: Optional[float] = None,
    ):
        """Waiting-mode acquisition (reconfiguration transactions).

        Returns a future that resolves when the lock is granted, or fails
        with :class:`LockConflict` if ``timeout`` elapses first (bounding any
        cross-node wait cycle).  Requires a simulator-backed lock table.
        """
        if self.sim is None:
            raise RuntimeError("acquire_async needs LockTable(sim=...)")
        fut = self.sim.event(name=f"lock:{key}")
        lock = self._locks.get(key)
        if lock is None:
            lock = self._locks[key] = _Lock()
        compatible = txn_id in lock.holders or (
            not lock.waiters
            and not (lock.holders and (exclusive or lock.exclusive))
        )
        if compatible and txn_id in lock.holders and exclusive and not lock.exclusive:
            compatible = len(lock.holders) == 1 and not lock.waiters
        if compatible:
            if txn_id in lock.holders:
                if exclusive:
                    lock.exclusive = True
                self.acquisitions += 1
            else:
                self._grant(lock, txn_id, key, exclusive)
            fut.resolve()
            return fut
        entry = (txn_id, exclusive, fut)
        lock.waiters.append(entry)
        self.waits += 1
        tracer = self.tracer
        if tracer is not None:
            tracer.count("lock.waits")
            wsid = tracer.begin(
                self.track, "lock_wait",
                args={"txn": txn_id, "key": str(key)},
            )
            if wsid:
                self._wait_spans[fut] = wsid
        if timeout is not None:
            def expire():
                if not fut.done:
                    try:
                        lock.waiters.remove(entry)
                    except ValueError:
                        pass
                    self.conflicts += 1
                    if self._wait_spans:
                        wsid = self._wait_spans.pop(fut, None)
                        if wsid:
                            self.tracer.end(wsid, {"outcome": "timeout"})
                    fut.fail(LockConflict(key, lock.holders))
            # Handle-free timer; ``expire`` no-ops if the wait already ended.
            self.sim.timer(timeout, expire)
        return fut

    def _grant(self, lock: _Lock, txn_id: str, key: object, exclusive: bool) -> None:
        lock.exclusive = exclusive
        lock.holders.add(txn_id)
        self._held_by_txn.setdefault(txn_id, set()).add(key)
        self.acquisitions += 1

    def _wake_waiters(self, key: object, lock: _Lock) -> None:
        while lock.waiters:
            txn_id, exclusive, fut = lock.waiters[0]
            if fut.done:  # timed out; drop
                lock.waiters.popleft()
                continue
            if lock.holders and (exclusive or lock.exclusive):
                break
            lock.waiters.popleft()
            self._grant(lock, txn_id, key, exclusive)
            if self._wait_spans:
                wsid = self._wait_spans.pop(fut, None)
                if wsid:
                    self.tracer.end(wsid, {"outcome": "granted"})
            fut.resolve()
            if exclusive:
                break

    def release_all(self, txn_id: str) -> None:
        """Strict 2PL: drop every lock the transaction holds (commit/abort)."""
        for key in self._held_by_txn.pop(txn_id, ()):
            lock = self._locks.get(key)
            if lock is None:
                continue
            lock.holders.discard(txn_id)
            if not lock.holders:
                lock.exclusive = False
                self._wake_waiters(key, lock)
                if not lock.holders and not lock.waiters:
                    del self._locks[key]
            else:
                # Remaining holders of a shared lock keep it shared.
                lock.exclusive = False
                self._wake_waiters(key, lock)

    def holders(self, key: object) -> Set[str]:
        lock = self._locks.get(key)
        return set(lock.holders) if lock else set()

    def is_exclusive(self, key: object) -> bool:
        lock = self._locks.get(key)
        return bool(lock and lock.exclusive)

    def held_by(self, txn_id: str) -> Set[object]:
        return set(self._held_by_txn.get(txn_id, ()))

    def holding_txns(self) -> Set[str]:
        """Transaction ids currently holding at least one lock."""
        return set(self._held_by_txn)

    def waiting(self, key: object) -> int:
        lock = self._locks.get(key)
        return len(lock.waiters) if lock else 0

    def clear(self) -> None:
        """Drop all state (node crash: in-memory locks are lost)."""
        for key, lock in list(self._locks.items()):
            for txn_id, _exclusive, fut in lock.waiters:
                if not fut.done:
                    if self._wait_spans:
                        wsid = self._wait_spans.pop(fut, None)
                        if wsid:
                            self.tracer.end(wsid, {"outcome": "cleared"})
                    fut.fail(LockConflict(key, set()))
        self._locks.clear()
        self._held_by_txn.clear()
        self._wait_spans.clear()
