"""Transaction contexts and lifecycle (§4.2, §5).

Both user transactions and reconfiguration transactions run through the same
machinery: a :class:`TxnContext` accumulates reads, buffered writes (grouped
per target log — MarlinCommit participants) and locks, and finishes through
commit or abort.  Abort reasons distinguish the paper's failure modes: lock
conflicts (NO_WAIT), wrong-node routing (data-effectiveness check, Algorithm 1
lines 2-6), and cross-node CAS conflicts detected by MarlinCommit.
"""

from __future__ import annotations

import enum
from collections import defaultdict
from typing import Dict, List, Optional, Tuple

from repro.storage.log import Delete, Put

__all__ = [
    "AbortReason",
    "TxnAborted",
    "TxnContext",
    "TxnStatus",
    "WrongNodeError",
    "invariant_confluent",
]

class TxnStatus(enum.Enum):
    ACTIVE = "active"
    COMMITTED = "committed"
    ABORTED = "aborted"


class AbortReason(enum.Enum):
    LOCK_CONFLICT = "lock_conflict"
    WRONG_NODE = "wrong_node"
    CAS_CONFLICT = "cas_conflict"
    VALIDATION = "validation"
    NODE_FAILED = "node_failed"


class TxnAborted(Exception):
    """Raised out of transaction execution when the transaction must abort."""

    def __init__(self, reason: AbortReason, detail: str = ""):
        super().__init__(f"transaction aborted: {reason.value} {detail}".strip())
        self.reason = reason
        self.detail = detail


class WrongNodeError(TxnAborted):
    """Data-effectiveness check failed: this node does not own the granule.

    Carries the actual owner (if known) so the client/router can redirect —
    Algorithm 1 line 6.
    """

    def __init__(self, granule: int, owner: Optional[int]):
        super().__init__(AbortReason.WRONG_NODE, f"granule={granule} owner={owner}")
        self.granule = granule
        self.owner = owner


def invariant_confluent(ops) -> bool:
    """True iff a transaction may bypass atomic commitment entirely.

    The conservative I-confluence test (Bailis et al., *Coordination
    Avoidance in Database Systems*): a transaction composed solely of blind
    commutative increments preserves any increment-tolerant invariant under
    arbitrary merge order, so each owner's share can be appended as an
    independent one-phase commit — no votes, no decision records, no locks.
    Anything with a read, a plain write or a delete stays on the 2PC path.
    """
    ops = tuple(ops)
    return bool(ops) and all(
        op.write and getattr(op, "incr", False) for op in ops
    )


class TxnContext:
    """State of one in-flight transaction on its coordinating node."""

    # The tail entries are extension attributes set by the commit machinery
    # (2PC fsm/vote state, traced-run span id, remote participant list);
    # readers use getattr(ctx, name, default), which an unset slot satisfies.
    __slots__ = (
        "txn_id", "node_id", "is_reconfig", "name", "status", "start_time",
        "writes", "abort_reason",
        "fsm", "voted", "span", "remote_participants",
    )

    def __init__(
        self,
        node_id: int,
        is_reconfig: bool = False,
        name: str = "",
        seq: Optional[int] = None,
    ):
        # ``seq`` is the coordinating node's per-instance sequence number
        # (ComputeNode.next_txn_seq).  Per-node allocation keeps txn ids
        # deterministic across same-seed runs in one process; there is no
        # process-global fallback counter (that was PR 7's trace-identity
        # leak, now a DET101 lint error) — bare construction must pass seq.
        if seq is None:
            raise TypeError(
                "TxnContext requires an explicit seq "
                "(ComputeNode.next_txn_seq() on the coordinating node)"
            )
        self.txn_id = f"txn-{node_id}-{seq}"
        self.node_id = node_id
        self.is_reconfig = is_reconfig
        self.name = name
        self.status = TxnStatus.ACTIVE
        self.start_time: Optional[float] = None
        #: Buffered writes grouped by target log name (MarlinCommit
        #: participants map, Algorithm 2 line 2).
        self.writes: Dict[str, List] = defaultdict(list)
        self.abort_reason: Optional[AbortReason] = None

    def write(self, log_name: str, table: str, key, value) -> None:
        self.writes[log_name].append(Put(table, key, value))

    def delete(self, log_name: str, table: str, key) -> None:
        self.writes[log_name].append(Delete(table, key))

    def entries_for(self, log_name: str) -> Tuple:
        return tuple(self.writes.get(log_name, ()))

    @property
    def participant_logs(self) -> List[str]:
        return sorted(self.writes)

    def mark_committed(self) -> None:
        self.status = TxnStatus.COMMITTED

    def mark_aborted(self, reason: AbortReason) -> None:
        self.status = TxnStatus.ABORTED
        self.abort_reason = reason

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"TxnContext({self.txn_id}, {self.status.value}, name={self.name!r})"
