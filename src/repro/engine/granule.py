"""Granules: fine-grained, fixed-size partitions of the key space (§4.1).

The paper uses 64 KB granules as the unit of data ownership and migration.
Keys here are integers; a granule covers a contiguous half-open key range.
This module also provides the placement helpers the autoscaler uses: an
initial contiguous assignment and a minimal-move rebalance planner.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Sequence, Tuple

__all__ = [
    "Granule",
    "GranuleMap",
    "contiguous_assignment",
    "rebalance_plan",
]


@dataclass(frozen=True, slots=True)
class Granule:
    """A contiguous key range ``[lo, hi)`` identified by ``gid``."""

    gid: int
    lo: int
    hi: int

    def __contains__(self, key: int) -> bool:
        return self.lo <= key < self.hi


class GranuleMap:
    """Partitions the integer key space ``[0, num_keys)`` into equal granules."""

    __slots__ = ("num_keys", "keys_per_granule", "num_granules")

    def __init__(self, num_keys: int, keys_per_granule: int):
        if num_keys <= 0 or keys_per_granule <= 0:
            raise ValueError("num_keys and keys_per_granule must be positive")
        self.num_keys = num_keys
        self.keys_per_granule = keys_per_granule
        self.num_granules = (num_keys + keys_per_granule - 1) // keys_per_granule

    def granule_of(self, key: int) -> int:
        if not 0 <= key < self.num_keys:
            raise KeyError(f"key {key} outside [0, {self.num_keys})")
        return key // self.keys_per_granule

    def granule(self, gid: int) -> Granule:
        if not 0 <= gid < self.num_granules:
            raise KeyError(f"granule {gid} outside [0, {self.num_granules})")
        lo = gid * self.keys_per_granule
        return Granule(gid, lo, min(lo + self.keys_per_granule, self.num_keys))

    def granules(self) -> Iterator[Granule]:
        for gid in range(self.num_granules):
            yield self.granule(gid)

    def keys_in(self, gid: int) -> range:
        g = self.granule(gid)
        return range(g.lo, g.hi)


def contiguous_assignment(
    num_granules: int, node_ids: Sequence[int]
) -> Dict[int, int]:
    """Assign granules to nodes in contiguous runs (range partitioning).

    Matches the paper's YCSB setup: tables "partitioned into granules across
    servers by range on the primary key".
    """
    if not node_ids:
        raise ValueError("need at least one node")
    nodes = list(node_ids)
    assignment: Dict[int, int] = {}
    base, extra = divmod(num_granules, len(nodes))
    gid = 0
    for i, node in enumerate(nodes):
        count = base + (1 if i < extra else 0)
        for _ in range(count):
            assignment[gid] = node
            gid += 1
    return assignment


def rebalance_plan(
    current: Dict[int, int], target_nodes: Sequence[int]
) -> List[Tuple[int, int, int]]:
    """Plan ``(granule, src, dst)`` moves that even out granule counts.

    Minimal-move: granules already on a target node stay put; overfull nodes
    donate their highest-numbered granules to underfull ones.  Deterministic
    for reproducibility (sorted iteration everywhere).
    """
    targets = sorted(set(target_nodes))
    if not targets:
        raise ValueError("need at least one target node")
    total = len(current)
    base, extra = divmod(total, len(targets))
    quota = {
        node: base + (1 if i < extra else 0) for i, node in enumerate(targets)
    }

    held: Dict[int, List[int]] = {node: [] for node in targets}
    homeless: List[int] = []
    for gid in sorted(current):
        owner = current[gid]
        if owner in held:
            held[owner].append(gid)
        else:
            homeless.append(gid)  # owner is being removed (scale-in / failover)

    surplus: List[Tuple[int, int]] = []  # (granule, src)
    for node in targets:
        over = len(held[node]) - quota[node]
        if over > 0:
            for gid in held[node][-over:]:
                surplus.append((gid, node))
    for gid in homeless:
        surplus.append((gid, current[gid]))

    moves: List[Tuple[int, int, int]] = []
    deficits: List[int] = []
    for node in targets:
        deficits.extend([node] * max(0, quota[node] - len(held[node])))
    for (gid, src), dst in zip(surplus, deficits):
        moves.append((gid, src, dst))
    return moves
