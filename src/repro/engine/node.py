"""Stateless compute nodes (§3.2, §5).

A :class:`ComputeNode` owns a partition of granules, executes user
transactions under 2PL NO_WAIT, commits through group commit to its WAL
(GLog) on disaggregated storage, and serves the RPC surface that both Marlin
and the external-coordination baselines build on:

* ``user_txn`` — client-facing transaction execution,
* ``user_branch`` / ``branch_abort`` — remote branches of distributed
  transactions (TPC-C multi-warehouse),
* ``vote_req`` / ``decision`` — 2PC participant protocol (driven by
  MarlinCommit or standard 2PC),
* ``warmup_pull`` — Squall-style cache warm-up scans during migration,
* ``heartbeat`` — ring failure detection.

Nodes can *freeze* (stop responding, keep memory — the paper's "temporary
slowdown" in Figure 7) and later resume with stale state, which is exactly
the race MarlinCommit must win.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, Generator, List, Optional, Tuple

from repro.engine.buffer import MISS, CacheManager
from repro.engine.granule import GranuleMap
from repro.engine.group_commit import GroupCommitter
from repro.engine.locks import LockConflict, LockTable
from repro.engine.txn import (
    AbortReason,
    TxnAborted,
    TxnContext,
    WrongNodeError,
    invariant_confluent,
)
from repro.sim.core import Future, SimError, Simulator, Timeout, all_of
from repro.sim.network import Network
from repro.sim.resources import CpuResource, Mutex
from repro.sim.rpc import RemoteError, RpcEndpoint, RpcTimeout
from repro.storage.log import AppendResult, Delete, Increment, Put, RecordKind

__all__ = [
    "ComputeNode",
    "NodeCrashed",
    "NodeParams",
    "TxnOp",
    "TxnSpec",
    "node_address",
]


class NodeCrashed(SimError):
    """Raised when a frozen node is asked to initiate new WAL work.

    A process forked in the instants between a crash and the crashing
    process's next yield (e.g. a vote branch spawned by a coordinator dying
    at a fault point) would otherwise create a fresh log gate, acquire it,
    and block forever on the dead endpoint — orphaning the gate and
    deadlocking the post-restart recovery pass queued behind it.
    """


def node_address(node_id: int) -> str:
    return f"node-{node_id}"


def glog_name(node_id: int) -> str:
    return f"glog-{node_id}"


SYSLOG = "syslog"
GTABLE = "gtable"
MTABLE = "mtable"


@dataclass(frozen=True, slots=True)
class TxnOp:
    """One operation of a user transaction.

    ``incr`` marks a blind commutative increment: a transaction made up
    entirely of such ops is invariant-confluent and eligible for the
    coordination-free fast path (no locks, no 2PC).
    """

    write: bool
    table: str
    key: int
    incr: bool = False


@dataclass(frozen=True, slots=True)
class TxnSpec:
    """A user transaction as shipped by a client: an ordered tuple of ops."""

    ops: Tuple[TxnOp, ...]

    @property
    def home_key(self) -> int:
        return self.ops[0].key


@dataclass
class NodeParams:
    """Calibration constants for one compute node (Standard D4s v3 class)."""

    vcpus: int = 4
    cache_pages: int = 8192
    keys_per_page: int = 8
    #: CPU seconds consumed per user operation (execution path).
    op_cpu: float = 80e-6
    #: Extra non-CPU latency per op (interactive client round trips, §5).
    interactive_delay: float = 400e-6
    #: CPU seconds for a reconfiguration transaction's local work.
    reconfig_cpu: float = 120e-6
    rpc_timeout: float = 5.0
    vote_timeout: float = 2.0
    #: How long a reconfiguration transaction waits for a lock before
    #: aborting (bounds any cross-node wait cycle).
    lock_wait_timeout: float = 1.0
    #: Concurrent MigrationTxn workers when this node is a migration target.
    migration_workers: int = 8
    warmup_enabled: bool = True
    #: Source-side scan time to stream one granule's pages (64 KB @ ~2 Gbps).
    warmup_time_per_granule: float = 500e-6
    group_commit_batch: int = 64
    #: Cornus-style in-doubt termination (core/commit.py): how long to let
    #: the coordinator finish on its own, the poll interval while watching
    #: the participant logs, and how many polls before claiming an abort.
    term_grace: float = 0.01
    term_poll: float = 0.005
    term_max_polls: int = 40


class ComputeNode:
    """One read-write compute node of the Partitioned-Writer database."""

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        node_id: int,
        region: str,
        storage_address: str,
        granule_map: GranuleMap,
        params: Optional[NodeParams] = None,
    ):
        self.sim = sim
        self.network = network
        self.node_id = node_id
        self.region = region
        self.storage_address = storage_address
        self.gmap = granule_map
        self.params = params or NodeParams()
        self.address = node_address(node_id)
        self.glog = glog_name(node_id)

        self.endpoint = RpcEndpoint(sim, network, self.address, region)
        #: log name -> storage address (shared, cluster-maintained).
        self.log_directory: Dict[str, str] = {}
        self.cpu = CpuResource(sim, self.params.vcpus, name=f"cpu-{node_id}")
        self.locks = LockTable(sim)
        self.cache = CacheManager(self.params.cache_pages)

        #: H-LSN per log: highest LSN this node successfully appended/observed.
        self.lsn_tracker: Dict[str, int] = {}
        #: Highest LSN per log whose effects are applied to local views.
        self.view_cursor: Dict[str, int] = {}
        #: This node's view of GTable: granule -> owner node id.
        self.gtable: Dict[int, int] = {}
        #: This node's cached MTable: node id -> address.
        self.mtable: Dict[int, str] = {}
        #: In-flight transaction contexts by txn id (locals and branches).
        self.txns: Dict[str, TxnContext] = {}

        self._log_gates: Dict[str, Mutex] = {}
        self.committer = GroupCommitter(
            self, self.glog, max_batch=self.params.group_commit_batch
        )
        self.runtime = None  # attached by the cluster
        self.metrics = None  # optional cluster-level MetricsCollector
        #: False under external coordination (WALs are exclusively owned).
        self.wal_conditional = True
        self.frozen = False
        self._procs: List = []
        #: Chaos hook invoked at every journaled FSM edge (core/participant.py
        #: ``fault_point``); armed by the recovery fault-point sweep.
        self.fault_hook = None
        #: Optional :class:`repro.obs.Tracer` (attached by the cluster like
        #: ``metrics``); ``None`` keeps every hot path at one attribute check.
        self.tracer = None
        #: Optional :class:`repro.engine.replication.ReplicaManager` shared
        #: across the cluster; ``None`` (the default) keeps the WAL paths
        #: free of replication work entirely.
        self.replicator = None
        #: Per-node txn sequence (see :meth:`next_txn_seq`): ids minted here
        #: depend only on this node's history, never on other clusters that
        #: happen to share the process.
        self._txn_seq = 0

        self.stats = {
            "committed": 0,
            "aborted": 0,
            "wrong_node": 0,
            "lock_conflicts": 0,
            "cas_aborts": 0,
            "branches_served": 0,
            "fast_path_commits": 0,
            "two_pc_commits": 0,
        }

        for method, handler in (
            ("user_txn", self._h_user_txn),
            ("user_branch", self._h_user_branch),
            ("branch_fast", self._h_branch_fast),
            ("branch_abort", self._h_branch_abort),
            ("vote_req", self._h_vote_req),
            ("decision", self._h_decision),
            ("warmup_pull", self._h_warmup_pull),
            ("heartbeat", self._h_heartbeat),
            ("owned_granules", self._h_owned_granules),
            ("scan_gtable", self._h_scan_gtable),
            ("run_migrations", self._h_run_migrations),
        ):
            self.endpoint.register(method, handler)

    def next_txn_seq(self) -> int:
        """Mint the next per-node transaction sequence number.

        Every ``TxnContext`` coordinated by this node passes one of these as
        ``seq``, so txn ids replay identically across same-seed runs even when
        several clusters share one process (a module-global counter would
        leak positions between them and shift every traced txn id).
        """
        self._txn_seq += 1
        return self._txn_seq

    # -- lifecycle -------------------------------------------------------------

    def start(self) -> None:
        self.committer.start()

    def spawn(self, gen, name: str = "") -> object:
        proc = self.sim.spawn(gen, name=name or f"node-{self.node_id}", daemon=True)
        self._procs.append(proc)
        return proc

    def freeze(self) -> None:
        """Stop responding but keep memory (the paper's unhealthy-node state).

        In-flight work is dropped and local locks are cleared (their
        transactions can never commit — the WAL is the ground truth), but the
        LSN trackers and table views stay *stale*, setting up the race that
        MarlinCommit resolves when the node comes back.
        """
        self.frozen = True
        self.endpoint.crashed = True
        self.endpoint.kill_processes()
        for proc in self._procs:
            proc.kill()
        self._procs.clear()
        self.committer.stop()
        self.locks.clear()
        self.txns.clear()
        self._log_gates.clear()

    def unfreeze(self) -> None:
        """Resume with whatever (possibly stale) state is in memory."""
        self.frozen = False
        self.endpoint.crashed = False
        self.committer = GroupCommitter(
            self,
            self.glog,
            max_batch=self.params.group_commit_batch,
            conditional=self.wal_conditional,
        )
        self.committer.start()

    def stop(self) -> None:
        """Permanent shutdown (scale-in or unrecoverable crash)."""
        self.freeze()

    # -- small helpers -----------------------------------------------------------

    def log_gate(self, log_name: str) -> Mutex:
        gate = self._log_gates.get(log_name)
        if gate is None:
            gate = self._log_gates[log_name] = Mutex(
                self.sim, name=f"gate-{self.node_id}-{log_name}"
            )
        return gate

    def storage_call(self, method: str, *args, log: Optional[str] = None) -> Future:
        """Call the storage service hosting ``log`` (own region by default).

        Logs live in their creating node's region (§6.5 co-locates storage
        with compute), so cross-region operations — e.g. RecoveryMigrTxn
        against a remote node's GLog — pay the corresponding network latency.
        """
        address = self.storage_address
        if log is not None:
            address = self.log_directory.get(log, self.storage_address)
        return self.endpoint.call(address, method, *args)

    def peer_call(self, peer_id: int, method: str, *args, timeout=None) -> Future:
        return self.endpoint.call(
            node_address(peer_id), method, *args, timeout=timeout
        )

    def owned_granules(self) -> List[int]:
        return sorted(g for g, o in self.gtable.items() if o == self.node_id)

    def member_ids(self) -> List[int]:
        """Member node ids from the MTable view (ignores auxiliary rows,
        e.g. suspicion votes, which share the table)."""
        return sorted(m for m in self.mtable if isinstance(m, int))

    def page_of(self, table: str, key: int) -> Tuple[str, int]:
        return (table, key // self.params.keys_per_page)

    def try_log(
        self,
        log_name: str,
        txn_id: str,
        kind: RecordKind,
        entries: tuple,
        conditional: bool = True,
        participants: tuple = (),
    ) -> Generator:
        """TryLog (Algorithm 2 lines 13-21): one gated conditional append.

        Returns the :class:`AppendResult`; on failure the tracker is updated
        with the log's current LSN so the caller can refresh and retry.
        """
        if self.frozen:
            raise NodeCrashed(f"node-{self.node_id}: try_log({log_name}) while frozen")
        gate = self.log_gate(log_name)
        tracer = self.tracer
        sid = 0
        if tracer is not None:
            tracer.count("wal.appends")
            # The span covers the gate wait too, so WAL-gate queueing shows
            # up as time-in-wal_append rather than vanishing.
            sid = tracer.begin(
                self.address, "wal_append",
                args={"log": log_name, "txn": txn_id, "kind": kind.name},
            )
        yield gate.acquire()
        try:
            expected = None
            if conditional:
                expected = self.lsn_tracker.get(log_name)
                if expected is None:
                    expected = yield self.storage_call(
                        "log_end_lsn", log_name, log=log_name
                    )
            result: AppendResult = yield self.storage_call(
                "append", log_name, txn_id, kind, entries, expected, participants,
                log=log_name,
            )
            self.lsn_tracker[log_name] = result.lsn
            if sid:
                tracer.end(sid, {"ok": int(result.ok)})
                sid = 0
            # Ship successful appends to this node's own WAL to its replica
            # set (votes, decisions, migration commits — the records that
            # keep follower ownership views honest).  Appends to *other*
            # logs (e.g. fencing writes into a dead node's GLog) are that
            # primary's history, not ours, and are never shipped.
            if (
                self.replicator is not None
                and result.ok
                and log_name == self.glog
            ):
                yield from self.replicator.on_wal_append(
                    self, result.lsn, ((txn_id, kind, entries),)
                )
            return result
        finally:
            gate.release()
            if sid:
                tracer.end(sid)

    def apply_system_entries(self, entries) -> None:
        """Fold committed GTable/MTable updates into this node's views."""
        for entry in entries:
            if isinstance(entry, Put):
                if entry.table == GTABLE:
                    self.gtable[entry.key] = entry.value
                elif entry.table == MTABLE:
                    self.mtable[entry.key] = entry.value
            elif isinstance(entry, Delete):
                if entry.table == GTABLE:
                    self.gtable.pop(entry.key, None)
                elif entry.table == MTABLE:
                    self.mtable.pop(entry.key, None)

    def _apply_user_entries(self, entries) -> None:
        for entry in entries:
            if isinstance(entry, Put) and entry.table not in (GTABLE, MTABLE):
                page = self.page_of(entry.table, entry.key)
                if self.cache.get(page) is not MISS:
                    self.cache.put(page, {"warm": True})

    def apply_committed(self, ctx: TxnContext) -> None:
        entries = ctx.entries_for(self.glog)
        self.apply_system_entries(entries)
        self._apply_user_entries(entries)
        self.view_cursor[self.glog] = self.lsn_tracker.get(self.glog, 0)

    # -- user transaction execution ----------------------------------------------

    def _h_user_txn(self, spec: TxnSpec):
        if invariant_confluent(spec.ops):
            return (yield from self._h_user_txn_fast(spec))
        ctx = TxnContext(self.node_id, seq=self.next_txn_seq())
        self.txns[ctx.txn_id] = ctx
        ctx.start_time = self.sim.now
        tracer = self.tracer
        sid = 0
        if tracer is not None:
            sid = tracer.begin(
                self.address, "user_txn", args={"txn": ctx.txn_id}
            )
            # Downstream commit machinery parents its spans under the txn.
            ctx.span = sid
        try:
            local_ops, remote_ops = self._partition_ops(ctx, spec)
            self._acquire_and_stage(ctx, local_ops)
            yield from self._execute_ops(ctx, local_ops)
            if remote_ops:
                yield from self._send_branches(ctx, remote_ops)
            yield from self.runtime.commit_user(ctx)
            self.apply_committed(ctx)
            self.locks.release_all(ctx.txn_id)
            ctx.mark_committed()
            self.stats["committed"] += 1
            if sid:
                tracer.end(sid, {"status": "committed"})
            return {"status": "committed"}
        except TxnAborted as abort:
            self.locks.release_all(ctx.txn_id)
            ctx.mark_aborted(abort.reason)
            self.stats["aborted"] += 1
            if abort.reason is AbortReason.WRONG_NODE:
                self.stats["wrong_node"] += 1
            elif abort.reason is AbortReason.LOCK_CONFLICT:
                self.stats["lock_conflicts"] += 1
            elif abort.reason is AbortReason.CAS_CONFLICT:
                self.stats["cas_aborts"] += 1
            if getattr(ctx, "remote_participants", None):
                self._abort_remote_branches(ctx)
            if sid:
                tracer.end(
                    sid, {"status": "aborted", "reason": abort.reason.value}
                )
            raise
        finally:
            self.txns.pop(ctx.txn_id, None)

    def _partition_ops(self, ctx, spec: TxnSpec):
        """Split ops into local and remote by granule ownership.

        The home granule (first op) must be owned by this node, else the
        client misrouted and gets a WrongNodeError with the owner hint
        (Algorithm 1 lines 2-6).
        """
        local: List[TxnOp] = []
        remote: Dict[int, List[TxnOp]] = {}
        home = self.gmap.granule_of(spec.home_key)
        home_owner = self.gtable.get(home)
        if home_owner != self.node_id:
            raise WrongNodeError(home, home_owner)
        checked = set()
        for op in spec.ops:
            granule = self.gmap.granule_of(op.key)
            owner = self.gtable.get(granule)
            if owner == self.node_id:
                if granule not in checked:
                    checked.add(granule)
                    self.runtime.check_ownership(ctx, granule)
                local.append(op)
            elif owner is None:
                raise WrongNodeError(granule, None)
            else:
                remote.setdefault(owner, []).append(op)
        return local, remote

    def _acquire_and_stage(self, ctx, ops: List[TxnOp]) -> None:
        try:
            for op in ops:
                self.locks.acquire(ctx.txn_id, (op.table, op.key), op.write)
        except LockConflict as conflict:
            raise TxnAborted(AbortReason.LOCK_CONFLICT, str(conflict)) from conflict
        for op in ops:
            if op.write:
                ctx.write(self.glog, op.table, op.key, f"v:{ctx.txn_id}")

    def _execute_ops(self, ctx, ops: List[TxnOp]):
        """CPU time plus storage fetches for cache misses."""
        misses = []
        for op in ops:
            page = self.page_of(op.table, op.key)
            if self.cache.get(page) is MISS:
                misses.append(page)
        tracer = self.tracer
        if tracer is not None and ops:
            tracer.count("cache.misses", len(misses))
            tracer.count("cache.hits", len(ops) - len(misses))
        if ops:
            yield from self.cpu.run(len(ops) * self.params.op_cpu)
        if misses:
            fetches = [
                self.storage_call("get_page", table, page_no, self.glog, 0)
                for table, page_no in misses
            ]
            yield all_of(self.sim, fetches)
            for page in misses:
                self.cache.put(page, {"warm": True})
        if ops and self.params.interactive_delay:
            yield Timeout(len(ops) * self.params.interactive_delay)

    def _send_branches(self, ctx, remote: Dict[int, List[TxnOp]]):
        """Ship remote branches of a distributed transaction to their owners."""
        ctx.remote_participants = sorted(remote)
        futs = [
            self.peer_call(
                owner,
                "user_branch",
                ctx.txn_id,
                self.node_id,
                tuple(ops),
                timeout=self.params.vote_timeout,
            )
            for owner, ops in sorted(remote.items())
        ]
        try:
            yield all_of(self.sim, futs)
        except RemoteError as err:
            if isinstance(err.cause, TxnAborted):
                raise TxnAborted(err.cause.reason, err.cause.detail) from err
            raise TxnAborted(AbortReason.VALIDATION, str(err)) from err
        except RpcTimeout as err:
            raise TxnAborted(AbortReason.NODE_FAILED, str(err)) from err

    def _abort_remote_branches(self, ctx) -> None:
        for owner in getattr(ctx, "remote_participants", ()):
            self.endpoint.cast(node_address(owner), "branch_abort", ctx.txn_id)

    def _h_user_branch(self, txn_id: str, coord_id: int, ops: Tuple[TxnOp, ...]):
        """Execute the local share of a distributed transaction (stage only)."""
        ctx = TxnContext(self.node_id, seq=self.next_txn_seq())
        ctx.txn_id = txn_id
        self.txns[txn_id] = ctx
        self.stats["branches_served"] += 1
        tracer = self.tracer
        sid = 0
        if tracer is not None:
            sid = tracer.begin(self.address, "branch", args={"txn": txn_id})
        try:
            for granule in sorted({self.gmap.granule_of(op.key) for op in ops}):
                self.runtime.check_ownership(ctx, granule)
            self._acquire_and_stage(ctx, list(ops))
            yield from self._execute_ops(ctx, list(ops))
            # Durably journal that this branch joined the transaction
            # (INITIALIZE -> ACTIVE).  A TXN_BEGIN with no later vote lets
            # recovery claim an abort without consulting anyone: the
            # coordinator cannot have committed without our vote.
            ctx.fsm = ParticipantFSM(txn_id)
            fault_point(self, txn_id, "begin", "before")
            result = yield self.committer.submit(txn_id, RecordKind.TXN_BEGIN, ())
            if not result.ok:
                if self.runtime is not None:
                    yield from self.runtime.handle_cas_failure(self.glog)
                raise TxnAborted(
                    AbortReason.CAS_CONFLICT, f"txn-begin CAS on {self.glog}"
                )
            ctx.fsm.to(TxnState.ACTIVE)
            fault_point(self, txn_id, "begin", "after")
            if sid:
                tracer.end(sid, {"status": "active"})
            return True
        except TxnAborted as abort:
            self.locks.release_all(txn_id)
            self.txns.pop(txn_id, None)
            if sid:
                tracer.end(
                    sid, {"status": "aborted", "reason": abort.reason.value}
                )
            raise

    def _h_branch_abort(self, txn_id: str):
        ctx = self.txns.pop(txn_id, None)
        if ctx is not None:
            self.locks.release_all(txn_id)

    # -- coordination-free fast path ----------------------------------------------

    def _h_user_txn_fast(self, spec: TxnSpec):
        """Commit an invariant-confluent transaction without any coordination.

        Blind commutative increments merge regardless of order and subset
        visibility, so each owner's share is appended to that owner's WAL as
        an independent one-phase commit — no locks, no votes, no decision
        records (Bailis et al., coordination avoidance).  Cross-owner
        atomicity is deliberately *not* provided: any interleaving of the
        per-owner appends yields the same converged counters, which is
        exactly what makes the coordination safe to skip.
        """
        ctx = TxnContext(self.node_id, seq=self.next_txn_seq())
        ctx.start_time = self.sim.now
        tracer = self.tracer
        sid = 0
        if tracer is not None:
            sid = tracer.begin(
                self.address, "user_txn_fast", args={"txn": ctx.txn_id}
            )
        try:
            home = self.gmap.granule_of(spec.home_key)
            home_owner = self.gtable.get(home)
            if home_owner != self.node_id:
                raise WrongNodeError(home, home_owner)
            local: List[TxnOp] = []
            remote: Dict[int, List[TxnOp]] = {}
            for op in spec.ops:
                granule = self.gmap.granule_of(op.key)
                owner = self.gtable.get(granule)
                if owner == self.node_id:
                    local.append(op)
                elif owner is None:
                    raise WrongNodeError(granule, None)
                else:
                    remote.setdefault(owner, []).append(op)
            futs = [
                self.peer_call(
                    owner,
                    "branch_fast",
                    ctx.txn_id,
                    tuple(ops),
                    timeout=self.params.vote_timeout,
                )
                for owner, ops in sorted(remote.items())
            ]
            if local:
                yield from self.cpu.run(len(local) * self.params.op_cpu)
                yield from self._append_increments(ctx.txn_id, local)
            if futs:
                try:
                    yield all_of(self.sim, futs)
                except RemoteError as err:
                    if isinstance(err.cause, TxnAborted):
                        raise TxnAborted(
                            err.cause.reason, err.cause.detail
                        ) from err
                    raise TxnAborted(AbortReason.VALIDATION, str(err)) from err
                except RpcTimeout as err:
                    raise TxnAborted(AbortReason.NODE_FAILED, str(err)) from err
            ctx.mark_committed()
            self.stats["committed"] += 1
            if futs:
                # Count only multi-owner commits: these are the transactions
                # that would otherwise have paid for 2PC.
                self.stats["fast_path_commits"] += 1
            if sid:
                tracer.end(sid, {"status": "committed"})
            return {"status": "committed", "fast_path": True}
        except TxnAborted as abort:
            ctx.mark_aborted(abort.reason)
            self.stats["aborted"] += 1
            if abort.reason is AbortReason.WRONG_NODE:
                self.stats["wrong_node"] += 1
            elif abort.reason is AbortReason.CAS_CONFLICT:
                self.stats["cas_aborts"] += 1
            if sid:
                tracer.end(
                    sid, {"status": "aborted", "reason": abort.reason.value}
                )
            raise

    def _append_increments(self, txn_id: str, ops: List[TxnOp]):
        """One-phase-commit this node's increment share, retrying through CAS.

        A CAS failure means someone else appended to our WAL (ownership may
        have moved): refresh the view, re-check ownership, and retry — the
        increments commute, so a retry after refresh is always safe.
        """
        entries = tuple(Increment(op.table, op.key, 1) for op in ops)
        for _attempt in range(5):
            result = yield self.committer.submit(
                txn_id, RecordKind.COMMIT_DATA, entries
            )
            if result.ok:
                return result
            if self.runtime is not None:
                yield from self.runtime.handle_cas_failure(self.glog)
            for op in ops:
                granule = self.gmap.granule_of(op.key)
                owner = self.gtable.get(granule)
                if owner != self.node_id:
                    raise WrongNodeError(granule, owner)
        raise TxnAborted(
            AbortReason.CAS_CONFLICT, f"fast-path append on {self.glog}"
        )

    def _h_branch_fast(self, txn_id: str, ops: Tuple[TxnOp, ...]):
        """Append a remote owner's increment share (fast-path branch)."""
        self.stats["branches_served"] += 1
        ctx = TxnContext(self.node_id, seq=self.next_txn_seq())
        try:
            for granule in sorted({self.gmap.granule_of(op.key) for op in ops}):
                self.runtime.check_ownership(ctx, granule)
            yield from self.cpu.run(len(ops) * self.params.op_cpu)
            yield from self._append_increments(txn_id, list(ops))
        finally:
            # The GTable read locks pin ownership only until the append is
            # durable; without this release every served branch leaks them.
            self.locks.release_all(ctx.txn_id)
        return True

    # -- 2PC participant protocol ---------------------------------------------

    def _h_vote_req(self, txn_id: str, conditional: bool, participants: tuple = ()):
        """Vote by TryLogging VOTE-YES with this participant's redo updates."""
        ctx = self.txns.get(txn_id)
        if ctx is None:
            return False
        fsm = getattr(ctx, "fsm", None)
        if fsm is None:
            # Branch staged outside user_branch (e.g. migration prepare):
            # adopt it into the FSM at the point it provably reached.
            fsm = ctx.fsm = ParticipantFSM(txn_id)
            fsm.to(TxnState.ACTIVE)
        fault_point(self, txn_id, "vote", "before")
        result = yield from self.try_log(
            self.glog,
            txn_id,
            RecordKind.VOTE_YES,
            ctx.entries_for(self.glog),
            conditional=conditional,
            participants=participants,
        )
        if result.ok:
            ctx.voted = True
            fsm.to(TxnState.PREPARED)
            fault_point(self, txn_id, "vote", "after")
        elif self.runtime is not None:
            yield from self.runtime.handle_cas_failure(self.glog)
        return bool(result.ok)

    def _h_decision(self, txn_id: str, commit: bool, conditional: bool):
        """Finalize a 2PC branch: apply or roll back, then log the decision."""
        ctx = self.txns.pop(txn_id, None)
        if ctx is None:
            return False
        fault_point(self, txn_id, "decide", "before")
        if commit:
            self.apply_committed(ctx)
        self.locks.release_all(txn_id)
        fsm = getattr(ctx, "fsm", None)
        if fsm is not None and not fsm.terminal:
            # A commit decision must find the branch PREPARED (the FSM raises
            # otherwise — a commit without our vote is a protocol violation);
            # aborts are legal from every non-terminal state.
            fsm.to(TxnState.COMMITTED if commit else TxnState.ABORTED)
        if getattr(ctx, "voted", False):
            self.spawn(
                self.append_decision(self.glog, txn_id, commit, conditional),
                name=f"decision:{txn_id}",
            )
        fault_point(self, txn_id, "decide", "after")
        return True

    def append_decision(
        self, log_name: str, txn_id: str, commit: bool, conditional: bool = True
    ):
        """Durably record a 2PC outcome; retries through CAS conflicts.

        Log-once: if a CAS failure reveals that a (possibly racing) resolver
        already decided this transaction in the log, that earlier decision
        stands and nothing further is appended.
        """
        kind = RecordKind.DECISION_COMMIT if commit else RecordKind.DECISION_ABORT
        while True:
            result = yield from self.try_log(
                log_name, txn_id, kind, (), conditional=conditional
            )
            if result.ok or not conditional:
                return result
            existing, _voted = yield self.storage_call(
                "txn_outcome", log_name, txn_id, log=log_name
            )
            if existing is not None:
                return AppendResult(True, self.lsn_tracker.get(log_name, 0))
            if self.runtime is not None:
                yield from self.runtime.handle_cas_failure(log_name)

    # -- migration support --------------------------------------------------------

    def _h_warmup_pull(self, granule: int):
        """Source-side Squall-style scan: stream the granule's pages (§4.4.1)."""
        yield Timeout(self.params.warmup_time_per_granule)
        pages = set()
        for key in self.gmap.keys_in(granule):
            pages.add(self.page_of("usertable", key))
        return sorted(pages)

    def _h_heartbeat(self, from_id: int):
        return self.node_id

    def _h_owned_granules(self):
        return self.owned_granules()

    def _h_scan_gtable(self):
        """This node's authoritative GTable partition (granule -> owner)."""
        return {g: self.node_id for g in self.owned_granules()}

    def _h_run_migrations(self, moves: Tuple[Tuple[int, int], ...]):
        """Pull ``(granule, src)`` moves into this node with a worker pool.

        The dispatch point for scale-out/rebalance: ``migration_workers``
        concurrent MigrationTxns, each retried with backoff on conflicts
        (the paper's reconfiguration-transaction retry policy, §6.1.4).
        """
        queue = list(moves)
        done = {"count": 0, "failed": 0}

        def worker():
            while queue:
                granule, src = queue.pop(0)
                backoff = 0.002
                started = self.sim.now
                tracer = self.tracer
                sid = 0
                if tracer is not None:
                    sid = tracer.begin(
                        self.address, "migration",
                        args={"granule": granule, "src": src},
                    )
                while True:
                    try:
                        yield from self.runtime.migrate(granule, src, self.node_id)
                        done["count"] += 1
                        if self.metrics is not None:
                            self.metrics.record_migration(
                                self.sim.now, latency=self.sim.now - started
                            )
                        if sid:
                            tracer.end(sid, {"status": "done"})
                        break
                    except TxnAborted as abort:
                        if abort.reason is AbortReason.WRONG_NODE:
                            if sid:
                                tracer.end(sid, {"status": "moot"})
                            done["failed"] += 1
                            break  # ownership changed under us; move is moot
                        yield Timeout(
                            backoff * (0.5 + self.sim.rng.random())
                        )
                        backoff = min(backoff * 2, 0.1)

        workers = [
            self.sim.spawn(worker(), name=f"migr-worker-{self.node_id}-{i}", daemon=True)
            for i in range(min(self.params.migration_workers, max(1, len(queue))))
        ]
        yield all_of(self.sim, [w.result for w in workers])
        return dict(done)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"ComputeNode({self.node_id}, region={self.region!r})"


# Imported last: repro.core's package __init__ pulls in modules that import
# names from this one, so a top-of-file import would see a half-initialized
# module whenever engine.node is imported before repro.core.
from repro.core.participant import ParticipantFSM, TxnState, fault_point  # noqa: E402
