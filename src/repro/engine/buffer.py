"""Buffer cache with clock (second-chance) replacement (§5).

"The cache manager uses the clock replacement algorithm.  On a read miss, the
page is fetched from the disaggregated storage."  Dirty pages are simply
dropped on eviction — under the log-as-the-database paradigm the WAL is the
ground truth and nothing is written back.
"""

from __future__ import annotations

from typing import Dict, List, Optional

__all__ = ["CacheManager", "MISS"]


class _Miss:
    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "<MISS>"


#: Sentinel distinguishing "not cached" from a cached ``None``.
MISS = _Miss()


class _Frame:
    __slots__ = ("key", "value", "ref", "pinned")

    def __init__(self, key, value):
        self.key = key
        self.value = value
        self.ref = True
        self.pinned = False


class CacheManager:
    """A fixed-capacity page cache using the clock algorithm."""

    __slots__ = (
        "capacity", "_frames", "_index", "_hand", "hits", "misses",
        "evictions",
    )

    def __init__(self, capacity: int):
        if capacity < 1:
            raise ValueError(f"cache capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._frames: List[Optional[_Frame]] = []
        self._index: Dict[object, int] = {}
        self._hand = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._index)

    def __contains__(self, key) -> bool:
        return key in self._index

    def get(self, key):
        """Return the cached value or :data:`MISS`; hits set the ref bit."""
        slot = self._index.get(key)
        if slot is None:
            self.misses += 1
            return MISS
        frame = self._frames[slot]
        frame.ref = True
        self.hits += 1
        return frame.value

    def put(self, key, value) -> None:
        """Insert or update; may evict one unpinned page (dropped, no writeback)."""
        slot = self._index.get(key)
        if slot is not None:
            frame = self._frames[slot]
            frame.value = value
            frame.ref = True
            return
        if len(self._frames) < self.capacity:
            self._index[key] = len(self._frames)
            self._frames.append(_Frame(key, value))
            return
        slot = self._find_victim()
        victim = self._frames[slot]
        if victim.key is not _HOLE:
            del self._index[victim.key]
            self.evictions += 1
        self._frames[slot] = _Frame(key, value)
        self._index[key] = slot

    def _find_victim(self) -> int:
        spins = 0
        limit = 2 * self.capacity + 1
        while True:
            frame = self._frames[self._hand]
            slot = self._hand
            self._hand = (self._hand + 1) % self.capacity
            if frame.pinned:
                spins += 1
            elif frame.ref:
                frame.ref = False
                spins += 1
            else:
                return slot
            if spins > limit:
                raise RuntimeError("cache: all pages pinned, cannot evict")

    def pin(self, key) -> None:
        slot = self._index.get(key)
        if slot is not None:
            self._frames[slot].pinned = True

    def unpin(self, key) -> None:
        slot = self._index.get(key)
        if slot is not None:
            self._frames[slot].pinned = False

    def invalidate(self, key) -> bool:
        """Drop one page (e.g. granule handed off); True if it was cached."""
        slot = self._index.pop(key, None)
        if slot is None:
            return False
        # Leave a hole that clock treats as immediately reusable.
        self._frames[slot] = _Frame(_HOLE, None)
        self._frames[slot].ref = False
        self.evictions += 1
        return True

    def clear(self) -> None:
        """Drop everything (node crash: caches are volatile)."""
        self._frames.clear()
        self._index.clear()
        self._hand = 0

    @property
    def hit_ratio(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class _Hole:
    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "<HOLE>"


_HOLE = _Hole()
