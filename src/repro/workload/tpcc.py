"""TPC-C workload generator (§6.1.3).

"TPC-C models a warehouse-centric order processing application with nine
tables and five transaction types.  All tables except ITEM are partitioned by
the warehouse ID.  The ITEM table is replicated at each server.  10% of
NEW-ORDER and 15% of PAYMENT transactions access multiple warehouses; other
transactions access data on a single server.  We use a warehouse as the unit
of migration, and each granule contains one warehouse."

Transactions are generated as key-access footprints over the nine tables:
every warehouse owns one granule's key range, and a remote stock/customer
access lands in another warehouse's granule, making the transaction
distributed (2PC across the owning nodes) exactly as in the paper's testbed.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional

from repro.engine.granule import GranuleMap
from repro.engine.node import TxnOp, TxnSpec

__all__ = ["TpccConfig", "TpccWorkload", "TPCC_TABLES"]

TPCC_TABLES = (
    "warehouse",
    "district",
    "customer",
    "history",
    "new_order",
    "orders",
    "order_line",
    "stock",
    "item",  # replicated: always read locally, never remote
)

#: Standard TPC-C transaction mix.
DEFAULT_MIX = (
    ("new_order", 0.45),
    ("payment", 0.43),
    ("order_status", 0.04),
    ("delivery", 0.04),
    ("stock_level", 0.04),
)


@dataclass(frozen=True)
class TpccConfig:
    """Scaled-down TPC-C parameters (the paper shrinks warehouses to ~1 MB)."""

    districts_per_warehouse: int = 10
    #: P(NEW-ORDER accesses a remote warehouse) — 10% in the spec and paper.
    remote_new_order: float = 0.10
    #: P(PAYMENT pays through a remote warehouse's customer) — 15%.
    remote_payment: float = 0.15
    min_items: int = 5
    max_items: int = 15


class TpccWorkload:
    """Generates TPC-C transactions; warehouse == granule."""

    def __init__(
        self,
        gmap: GranuleMap,
        config: Optional[TpccConfig] = None,
        warehouse_lo: int = 0,
        warehouse_hi: Optional[int] = None,
    ):
        self.gmap = gmap
        self.config = config or TpccConfig()
        self.num_warehouses = gmap.num_granules
        self.warehouse_lo = warehouse_lo
        self.warehouse_hi = (
            self.num_warehouses if warehouse_hi is None else warehouse_hi
        )
        if not 0 <= warehouse_lo < self.warehouse_hi <= self.num_warehouses:
            raise ValueError("bad warehouse range")
        self.mix = DEFAULT_MIX
        self.generated = {name: 0 for name, _weight in DEFAULT_MIX}

    # -- key construction ----------------------------------------------------------

    def _key(self, rng: random.Random, warehouse: int) -> int:
        """A pseudo-random key inside the warehouse's granule range."""
        granule = self.gmap.granule(warehouse)
        return rng.randrange(granule.lo, granule.hi)

    def _home_key(self, warehouse: int) -> int:
        return self.gmap.granule(warehouse).lo

    def _pick_local(self, rng: random.Random) -> int:
        return rng.randrange(self.warehouse_lo, self.warehouse_hi)

    def _pick_remote(self, rng: random.Random, home: int) -> int:
        if self.num_warehouses == 1:
            return home
        while True:
            w = rng.randrange(self.num_warehouses)
            if w != home:
                return w

    # -- transaction types ------------------------------------------------------------

    def next_txn(self, rng: random.Random) -> TxnSpec:
        point = rng.random()
        acc = 0.0
        for name, weight in self.mix:
            acc += weight
            if point < acc:
                self.generated[name] += 1
                return getattr(self, f"_{name}")(rng)
        self.generated["stock_level"] += 1
        return self._stock_level(rng)

    def _new_order(self, rng: random.Random) -> TxnSpec:
        w = self._pick_local(rng)
        ops: List[TxnOp] = [
            TxnOp(False, "warehouse", self._home_key(w)),
            TxnOp(True, "district", self._key(rng, w)),
            TxnOp(False, "customer", self._key(rng, w)),
            TxnOp(True, "orders", self._key(rng, w)),
            TxnOp(True, "new_order", self._key(rng, w)),
        ]
        n_items = rng.randint(self.config.min_items, self.config.max_items)
        remote_txn = rng.random() < self.config.remote_new_order
        for _ in range(n_items):
            ops.append(TxnOp(False, "item", self._key(rng, w)))  # replicated read
            stock_w = w
            if remote_txn and rng.random() < 0.5:
                stock_w = self._pick_remote(rng, w)
            ops.append(TxnOp(True, "stock", self._key(rng, stock_w)))
            ops.append(TxnOp(True, "order_line", self._key(rng, w)))
        return TxnSpec(ops=tuple(ops))

    def _payment(self, rng: random.Random) -> TxnSpec:
        w = self._pick_local(rng)
        customer_w = w
        if rng.random() < self.config.remote_payment:
            customer_w = self._pick_remote(rng, w)
        ops = (
            TxnOp(True, "warehouse", self._home_key(w)),
            TxnOp(True, "district", self._key(rng, w)),
            TxnOp(True, "customer", self._key(rng, customer_w)),
            TxnOp(True, "history", self._key(rng, w)),
        )
        return TxnSpec(ops=ops)

    def _order_status(self, rng: random.Random) -> TxnSpec:
        w = self._pick_local(rng)
        ops = (
            TxnOp(False, "customer", self._home_key(w)),
            TxnOp(False, "orders", self._key(rng, w)),
            TxnOp(False, "order_line", self._key(rng, w)),
        )
        return TxnSpec(ops=ops)

    def _delivery(self, rng: random.Random) -> TxnSpec:
        w = self._pick_local(rng)
        ops: List[TxnOp] = [TxnOp(True, "new_order", self._home_key(w))]
        for _ in range(self.config.districts_per_warehouse):
            ops.append(TxnOp(True, "orders", self._key(rng, w)))
            ops.append(TxnOp(True, "order_line", self._key(rng, w)))
            ops.append(TxnOp(True, "customer", self._key(rng, w)))
        return TxnSpec(ops=tuple(ops))

    def _stock_level(self, rng: random.Random) -> TxnSpec:
        w = self._pick_local(rng)
        ops: List[TxnOp] = [TxnOp(False, "district", self._home_key(w))]
        for _ in range(8):
            ops.append(TxnOp(False, "order_line", self._key(rng, w)))
            ops.append(TxnOp(False, "stock", self._key(rng, w)))
        return TxnSpec(ops=tuple(ops))

    def remote_fraction(self) -> float:
        """Expected fraction of distributed transactions (sanity metric)."""
        return 0.45 * self.config.remote_new_order + 0.43 * self.config.remote_payment
