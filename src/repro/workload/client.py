"""Closed-loop clients and the routing tier (§3, §6.1.4).

``Router`` caches the granule->node mapping (one shared instance per client
pool).  Staleness never violates correctness: a misrouted transaction aborts
at the receiving node with a WrongNodeError carrying the owner hint, the
router learns, and the client retries — exactly the redirect flow of
Algorithm 1 lines 2-6 and §4.2.

``Client`` issues one transaction at a time and retries aborted transactions
with exponential backoff bounded at 100 ms (§6.1.4).
"""

from __future__ import annotations

import random
from typing import Dict, Iterable, Optional

from repro.engine.granule import GranuleMap
from repro.engine.node import node_address
from repro.engine.txn import AbortReason, TxnAborted
from repro.sim.core import Simulator, Timeout
from repro.sim.network import Network
from repro.sim.rpc import RemoteError, RpcEndpoint, RpcError, RpcTimeout

__all__ = ["Client", "Router"]

BACKOFF_CAP = 0.1  # the paper's 100 ms bound


class Router:
    """Shared granule->node cache with WrongNode-hint learning.

    ``any_node`` is on every misroute/timeout retry path, so the sorted node
    list is cached as a tuple and invalidated only when membership changes
    (``update``/``sync``/``drop_node``) instead of re-sorting per call.
    """

    def __init__(self, assignment: Dict[int, int]):
        self.map: Dict[int, int] = dict(assignment)
        self.known_nodes = set(assignment.values())
        self.redirects = 0
        self._sorted_nodes: Optional[tuple] = None

    def route(self, granule: int) -> int:
        return self.map[granule]

    def update(self, granule: int, owner: int) -> None:
        self.map[granule] = owner
        if owner not in self.known_nodes:
            self.known_nodes.add(owner)
            self._sorted_nodes = None
        self.redirects += 1

    def sync(self, assignment: Dict[int, int]) -> None:
        """Bulk refresh (periodic GTable broadcast / ScanGTableTxn result)."""
        self.map.update(assignment)
        self.known_nodes = set(self.map.values())
        self._sorted_nodes = None

    def drop_node(self, node_id: int) -> None:
        if node_id in self.known_nodes:
            self.known_nodes.discard(node_id)
            self._sorted_nodes = None

    def any_node(self, rng: random.Random, exclude: Optional[int] = None) -> int:
        nodes = self._sorted_nodes
        if nodes is None:
            nodes = self._sorted_nodes = tuple(sorted(self.known_nodes))
        if exclude is not None and exclude in self.known_nodes:
            # Drop the excluded node without re-sorting; fall back to the full
            # list when it was the only one (same semantics as before).
            filtered = tuple(n for n in nodes if n != exclude)
            if filtered:
                nodes = filtered
        return nodes[rng.randrange(len(nodes))]


class Client:
    """One closed-loop, interactive-mode client."""

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        region: str,
        router: Router,
        workload,
        metrics,
        gmap: GranuleMap,
        seed: int = 0,
        request_timeout: float = 5.0,
    ):
        self.sim = sim
        # Per-network allocation, not a process-global counter: a global
        # would leak across runs in one process and shift every client
        # address (= trace track), breaking trace byte-identity.
        self.client_id = network._next_client_id
        network._next_client_id += 1
        self.region = region
        self.router = router
        self.workload = workload
        self.metrics = metrics
        self.gmap = gmap
        self.rng = random.Random(seed)
        self.request_timeout = request_timeout
        self.endpoint = RpcEndpoint(
            sim, network, f"client-{self.client_id}", region
        )
        self.running = False
        self._proc = None
        self.committed = 0
        self.retries = 0

    def start(self) -> None:
        if self.running:
            return
        self.running = True
        self._proc = self.sim.spawn(
            self._loop(), name=f"client-{self.client_id}", daemon=True
        )

    def stop(self) -> None:
        self.running = False
        if self._proc is not None:
            self._proc.kill()
            self._proc = None

    def _loop(self):
        while self.running:
            spec = self.workload.next_txn(self.rng)
            yield from self._run_txn_to_commit(spec)

    def _run_txn_to_commit(self, spec):
        """Issue one transaction, retrying until it commits (§6.1.4)."""
        granule = self.gmap.granule_of(spec.home_key)
        started = self.sim.now
        backoff = 0.002
        target = None
        while self.running:
            try:
                target = self.router.route(granule)
            except KeyError:
                target = self.router.any_node(self.rng)
            try:
                yield self.endpoint.call(
                    node_address(target), "user_txn", spec,
                    timeout=self.request_timeout,
                )
                self.committed += 1
                self.metrics.record_commit(self.sim.now, self.sim.now - started)
                return True
            except RemoteError as err:
                cause = err.cause
                if isinstance(cause, TxnAborted):
                    self.metrics.record_abort(self.sim.now, cause.reason.value)
                    if (
                        cause.reason is AbortReason.WRONG_NODE
                        and getattr(cause, "owner", None) is not None
                    ):
                        self.router.update(granule, cause.owner)
                        self.retries += 1
                        continue  # redirect immediately, no backoff
                else:
                    self.metrics.record_abort(self.sim.now, "rpc_error")
            except RpcTimeout:
                self.metrics.record_abort(self.sim.now, "timeout")
                # The node may be down: learn a new owner by asking someone else.
                self.router.update(granule, self.router.any_node(self.rng, exclude=target))
            except RpcError:
                self.metrics.record_abort(self.sim.now, "rpc_error")
            self.retries += 1
            yield Timeout(min(backoff * (0.5 + self.rng.random()), BACKOFF_CAP))
            backoff = min(backoff * 2, BACKOFF_CAP)
        return False
