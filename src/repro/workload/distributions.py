"""Key-selection distributions for workload generators.

``Zipfian`` follows the standard YCSB/Gray self-similar construction with a
precomputed zeta constant, so hot keys match what the original benchmark
would produce for the same theta.
"""

from __future__ import annotations

import math
import random
from typing import Optional

__all__ = ["HotSpot", "Uniform", "Zipfian"]


class Uniform:
    """Uniform over ``[0, n)`` — the paper's default for YCSB (§6.1.3)."""

    def __init__(self, n: int):
        if n <= 0:
            raise ValueError("n must be positive")
        self.n = n

    def sample(self, rng: random.Random) -> int:
        return rng.randrange(self.n)


class Zipfian:
    """Zipfian over ``[0, n)`` with skew ``theta`` (YCSB's generator)."""

    def __init__(self, n: int, theta: float = 0.99):
        if n <= 0:
            raise ValueError("n must be positive")
        if not 0 < theta < 1:
            raise ValueError("theta must be in (0, 1)")
        self.n = n
        self.theta = theta
        self.zetan = self._zeta(n, theta)
        self.zeta2 = self._zeta(2, theta)
        self.alpha = 1.0 / (1.0 - theta)
        denominator = 1 - self.zeta2 / self.zetan
        if denominator == 0:  # n == 2: the eta branch is never sampled
            self.eta = 0.0
        else:
            self.eta = (1 - (2.0 / n) ** (1 - theta)) / denominator

    @staticmethod
    def _zeta(n: int, theta: float) -> float:
        return sum(1.0 / (i ** theta) for i in range(1, n + 1))

    def sample(self, rng: random.Random) -> int:
        u = rng.random()
        uz = u * self.zetan
        if uz < 1.0:
            return 0
        if uz < 1.0 + 0.5 ** self.theta:
            return 1
        return int(self.n * (self.eta * u - self.eta + 1) ** self.alpha)


class HotSpot:
    """``hot_fraction`` of accesses hit the first ``hot_set`` fraction of keys."""

    def __init__(self, n: int, hot_set: float = 0.2, hot_fraction: float = 0.8):
        if n <= 0:
            raise ValueError("n must be positive")
        if not 0 < hot_set <= 1 or not 0 <= hot_fraction <= 1:
            raise ValueError("hot_set in (0,1], hot_fraction in [0,1]")
        self.n = n
        self.hot_keys = max(1, int(n * hot_set))
        self.hot_fraction = hot_fraction

    def sample(self, rng: random.Random) -> int:
        if rng.random() < self.hot_fraction:
            return rng.randrange(self.hot_keys)
        if self.hot_keys >= self.n:
            return rng.randrange(self.n)
        return self.hot_keys + rng.randrange(self.n - self.hot_keys)
