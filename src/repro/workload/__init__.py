"""Workload substrate: YCSB and TPC-C generators, closed-loop clients (§6.1.3).

Clients run in interactive mode: a new transaction is issued only after the
previous response arrives; aborted transactions are retried with exponential
backoff (bounded at 100 ms) until they succeed, as in §6.1.4.
"""

from repro.workload.client import Client, Router
from repro.workload.distributions import HotSpot, Uniform, Zipfian
from repro.workload.syncer import RouterSyncer
from repro.workload.tpcc import TpccConfig, TpccWorkload
from repro.workload.ycsb import YcsbConfig, YcsbWorkload

__all__ = [
    "Client",
    "HotSpot",
    "Router",
    "RouterSyncer",
    "TpccConfig",
    "TpccWorkload",
    "Uniform",
    "YcsbConfig",
    "YcsbWorkload",
    "Zipfian",
]
