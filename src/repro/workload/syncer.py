"""Periodic router synchronization (§4.2).

"Compute nodes can periodically broadcast updates of their owned GTable
partitions to routers, thereby reducing redirections" — and routers can pull
the full map with ScanGTableTxn.  ``RouterSyncer`` implements the pull side:
it periodically asks one live node for a full ownership scan and feeds the
result to the shared :class:`repro.workload.client.Router`.  Staleness
between syncs is tolerated (misroutes abort with owner hints), so sync
failures are logged-and-skipped, never fatal.
"""

from __future__ import annotations

from typing import Optional

from repro.engine.txn import TxnAborted
from repro.sim.core import Timeout
from repro.sim.rpc import RpcError, RpcTimeout

__all__ = ["RouterSyncer"]


class RouterSyncer:
    """Pulls ScanGTableTxn results into a router on a fixed period."""

    def __init__(self, cluster, router, period: float = 2.0):
        self.cluster = cluster
        self.router = router
        self.period = period
        self.syncs = 0
        self.failures = 0
        self._proc = None

    def start(self) -> None:
        self._proc = self.cluster.sim.spawn(
            self._loop(), name="router-syncer", daemon=True
        )

    def stop(self) -> None:
        if self._proc is not None:
            self._proc.kill()
            self._proc = None

    def _loop(self):
        while True:
            yield Timeout(self.period)
            node = self._pick_node()
            if node is None:
                continue
            try:
                ownership = yield from node.runtime.scan_ownership()
            except (TxnAborted, RpcTimeout, RpcError):
                self.failures += 1
                continue
            self.router.sync(ownership)
            self.syncs += 1

    def _pick_node(self):
        live = self.cluster.live_node_ids()
        if not live:
            return None
        index = self.syncs % len(live)
        return self.cluster.nodes[live[index]]
