"""YCSB workload generator (§6.1.3).

"Each transaction is single-site and has 16 requests with 50% reads and 50%
updates accessing 16 tuples.  We generate requests following a uniform
distribution."  Single-site means all 16 keys fall in one granule — the
home granule — so user transactions conflict with a migration exactly when
it targets their granule, reproducing the interference in Figures 8-9.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional, Tuple

from repro.engine.granule import GranuleMap
from repro.engine.node import TxnOp, TxnSpec
from repro.workload.distributions import Uniform, Zipfian

__all__ = ["YcsbConfig", "YcsbWorkload"]

TABLE = "usertable"


@dataclass(frozen=True)
class YcsbConfig:
    requests_per_txn: int = 16
    read_fraction: float = 0.5
    distribution: str = "uniform"  # "uniform" | "zipfian"
    zipf_theta: float = 0.99


class YcsbWorkload:
    """Generates single-site YCSB transactions over a granule-partitioned table."""

    def __init__(
        self,
        gmap: GranuleMap,
        config: Optional[YcsbConfig] = None,
        key_lo: int = 0,
        key_hi: Optional[int] = None,
    ):
        self.gmap = gmap
        self.config = config or YcsbConfig()
        self.key_lo = key_lo
        self.key_hi = gmap.num_keys if key_hi is None else key_hi
        if not 0 <= key_lo < self.key_hi <= gmap.num_keys:
            raise ValueError(f"bad key range [{key_lo}, {key_hi})")
        span = self.key_hi - self.key_lo
        if self.config.distribution == "uniform":
            self._picker = Uniform(span)
        elif self.config.distribution == "zipfian":
            self._picker = Zipfian(span, self.config.zipf_theta)
        else:
            raise ValueError(f"unknown distribution {self.config.distribution!r}")

    def next_txn(self, rng: random.Random) -> TxnSpec:
        """One single-site transaction: 16 ops inside one random granule."""
        home_key = self.key_lo + self._picker.sample(rng)
        granule = self.gmap.granule(self.gmap.granule_of(home_key))
        ops = []
        for _ in range(self.config.requests_per_txn):
            key = rng.randrange(granule.lo, granule.hi)
            write = rng.random() >= self.config.read_fraction
            ops.append(TxnOp(write=write, table=TABLE, key=key))
        # The home key leads so routing targets the right granule.
        ops[0] = TxnOp(write=ops[0].write, table=TABLE, key=home_key)
        return TxnSpec(ops=tuple(ops))
