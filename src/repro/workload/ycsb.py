"""YCSB workload generator (§6.1.3).

"Each transaction is single-site and has 16 requests with 50% reads and 50%
updates accessing 16 tuples.  We generate requests following a uniform
distribution."  Single-site means all 16 keys fall in one granule — the
home granule — so user transactions conflict with a migration exactly when
it targets their granule, reproducing the interference in Figures 8-9.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional, Tuple

from repro.engine.granule import GranuleMap
from repro.engine.node import TxnOp, TxnSpec
from repro.workload.distributions import Uniform, Zipfian

__all__ = ["YcsbConfig", "YcsbWorkload"]

TABLE = "usertable"


@dataclass(frozen=True)
class YcsbConfig:
    requests_per_txn: int = 16
    read_fraction: float = 0.5
    distribution: str = "uniform"  # "uniform" | "zipfian"
    zipf_theta: float = 0.99
    #: Fraction of transactions that are global-counter increments: blind
    #: commutative writes drawn from the *full* keyspace (cross-granule,
    #: cross-node by construction), eligible for the coordination-free
    #: fast path instead of 2PC.
    incr_fraction: float = 0.0
    #: Fraction of (non-increment) transactions that also write a second,
    #: globally-random granule — ordinary read/write ops, so they *must*
    #: take the full 2PC path.  Off by default: the paper's YCSB is
    #: single-site.
    remote_fraction: float = 0.0


class YcsbWorkload:
    """Generates single-site YCSB transactions over a granule-partitioned table."""

    def __init__(
        self,
        gmap: GranuleMap,
        config: Optional[YcsbConfig] = None,
        key_lo: int = 0,
        key_hi: Optional[int] = None,
    ):
        self.gmap = gmap
        self.config = config or YcsbConfig()
        self.key_lo = key_lo
        self.key_hi = gmap.num_keys if key_hi is None else key_hi
        if not 0 <= key_lo < self.key_hi <= gmap.num_keys:
            raise ValueError(f"bad key range [{key_lo}, {key_hi})")
        span = self.key_hi - self.key_lo
        if self.config.distribution == "uniform":
            self._picker = Uniform(span)
        elif self.config.distribution == "zipfian":
            self._picker = Zipfian(span, self.config.zipf_theta)
        else:
            raise ValueError(f"unknown distribution {self.config.distribution!r}")

    def next_txn(self, rng: random.Random) -> TxnSpec:
        """One single-site transaction: 16 ops inside one random granule."""
        if self.config.incr_fraction and rng.random() < self.config.incr_fraction:
            return self._incr_txn(rng)
        home_key = self.key_lo + self._picker.sample(rng)
        granule = self.gmap.granule(self.gmap.granule_of(home_key))
        ops = []
        for _ in range(self.config.requests_per_txn):
            key = rng.randrange(granule.lo, granule.hi)
            write = rng.random() >= self.config.read_fraction
            ops.append(TxnOp(write=write, table=TABLE, key=key))
        # The home key leads so routing targets the right granule.
        ops[0] = TxnOp(write=ops[0].write, table=TABLE, key=home_key)
        if self.config.remote_fraction and rng.random() < self.config.remote_fraction:
            # Redirect the tail of the transaction at a second, globally
            # random granule: plain writes, so the commit needs 2PC.
            other = self.gmap.granule(
                self.gmap.granule_of(rng.randrange(self.gmap.num_keys))
            )
            spill = max(1, len(ops) // 4)
            for i in range(len(ops) - spill, len(ops)):
                ops[i] = TxnOp(
                    write=True,
                    table=TABLE,
                    key=rng.randrange(other.lo, other.hi),
                )
        return TxnSpec(ops=tuple(ops))

    def _incr_txn(self, rng: random.Random) -> TxnSpec:
        """A global-counter transaction: blind increments across the whole
        keyspace (deliberately *not* restricted to this client's range), so
        its ops routinely span granules owned by different nodes.  The home
        key stays in-range for correct routing; the rest are global."""
        home_key = self.key_lo + self._picker.sample(rng)
        ops = [TxnOp(write=True, table=TABLE, key=home_key, incr=True)]
        for _ in range(self.config.requests_per_txn - 1):
            key = rng.randrange(self.gmap.num_keys)
            ops.append(TxnOp(write=True, table=TABLE, key=key, incr=True))
        return TxnSpec(ops=tuple(ops))
