"""``python -m repro.analysis`` — the detlint command line.

Usage::

    python -m repro.analysis src/                 # lint, human output
    python -m repro.analysis src/ --json          # machine output
    python -m repro.analysis src/ --baseline B    # suppress snapshotted findings
    python -m repro.analysis src/ --write-baseline B
    python -m repro.analysis --list-rules

Exit status: 0 when no unsuppressed, unwaived *error*-tier findings remain
(advisories never gate); 1 otherwise; 2 on usage errors.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional, Sequence

from repro.analysis import baseline as baseline_mod
from repro.analysis.framework import (
    SEVERITY_ADVISORY,
    SEVERITY_ERROR,
    Finding,
    all_rules,
    analyze_paths,
)

__all__ = ["main"]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description=(
            "detlint: AST determinism & sim-safety lint for the Marlin "
            "reproduction (rule catalogue: ANALYSIS.md)"
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--json", action="store_true", help="emit a JSON report on stdout"
    )
    parser.add_argument(
        "--baseline",
        metavar="FILE",
        help="suppress findings fingerprinted in FILE",
    )
    parser.add_argument(
        "--write-baseline",
        metavar="FILE",
        help="snapshot current unwaived findings to FILE and exit 0",
    )
    parser.add_argument(
        "--rules",
        metavar="IDS",
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--no-advisory",
        action="store_true",
        help="hide advisory-tier findings from the report",
    )
    parser.add_argument(
        "--show-waived",
        action="store_true",
        help="also print waived findings (with their reasons)",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule catalogue"
    )
    return parser


def _select_rules(spec: Optional[str]):
    rules = [r for r in all_rules() if r.id not in ("DET000", "DET100")]
    if spec is None:
        return None  # framework default: all rules
    wanted = {s.strip() for s in spec.split(",") if s.strip()}
    known = {r.id for r in rules}
    unknown = wanted - known
    if unknown:
        raise SystemExit(
            f"unknown rule id(s): {', '.join(sorted(unknown))} "
            f"(known: {', '.join(sorted(known))})"
        )
    return [r for r in rules if r.id in wanted]


def _render_text(findings: List[Finding], args, out) -> None:
    shown = 0
    for f in findings:
        if f.suppressed:
            continue
        if f.waived and not args.show_waived:
            continue
        if f.severity == SEVERITY_ADVISORY and args.no_advisory:
            continue
        tag = f.severity
        if f.waived:
            tag = f"waived: {f.waiver_reason}"
        print(
            f"{f.path}:{f.line}:{f.col}: {f.rule} [{tag}] {f.message}",
            file=out,
        )
        shown += 1
    errors = sum(1 for f in findings if f.gates)
    advisory = sum(
        1
        for f in findings
        if f.severity == SEVERITY_ADVISORY and not f.waived and not f.suppressed
    )
    waived = sum(1 for f in findings if f.waived)
    suppressed = sum(1 for f in findings if f.suppressed)
    print(
        f"detlint: {errors} error(s), {advisory} advisory, "
        f"{waived} waived, {suppressed} baseline-suppressed",
        file=out,
    )


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in all_rules():
            if rule.id in ("DET000", "DET100"):
                continue
            print(f"{rule.id} [{rule.severity}] ({rule.requires}) "
                  f"{rule.name}: {rule.doc}")
        return 0

    rules = _select_rules(args.rules)
    try:
        findings = analyze_paths(args.paths, rules=rules)
    except FileNotFoundError as exc:
        parser.error(str(exc))

    if args.baseline:
        try:
            known = baseline_mod.load_baseline(args.baseline)
        except (OSError, ValueError, json.JSONDecodeError) as exc:
            parser.error(f"cannot load baseline: {exc}")
        baseline_mod.apply_baseline(findings, known)

    if args.write_baseline:
        baseline_mod.write_baseline(args.write_baseline, findings)
        print(
            f"detlint: wrote {args.write_baseline} "
            f"({sum(1 for f in findings if not f.waived)} fingerprint(s))",
            file=sys.stderr,
        )
        return 0

    if args.json:
        doc = {
            "version": 1,
            "counts": {
                "error": sum(1 for f in findings if f.gates),
                "advisory": sum(
                    1
                    for f in findings
                    if f.severity == SEVERITY_ADVISORY
                    and not f.waived
                    and not f.suppressed
                ),
                "waived": sum(1 for f in findings if f.waived),
                "suppressed": sum(1 for f in findings if f.suppressed),
            },
            "findings": [
                f.to_dict()
                for f in findings
                if not (f.severity == SEVERITY_ADVISORY and args.no_advisory)
            ],
        }
        json.dump(doc, sys.stdout, indent=2, sort_keys=True)
        print()
    else:
        _render_text(findings, args, sys.stdout)

    return 1 if any(f.gates for f in findings) else 0
