"""The detlint rule suite: this repo's determinism bug history, as AST checks.

Each rule encodes a hazard class that has actually broken (or would break)
the repo's core guarantee — seeded runs are bit-identical — or a standing
performance constraint from ROADMAP.md.  The historical incident behind each
rule is catalogued in ANALYSIS.md; the one-line ``doc`` here is what
``--list-rules`` prints.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.analysis.framework import (
    SEVERITY_ADVISORY,
    Finding,
    ModuleContext,
    Rule,
    register,
)

__all__ = []  # rules are reached through the registry, not imports


def _dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for an Attribute/Name chain, else None."""
    parts: List[str] = []
    cur = node
    while isinstance(cur, ast.Attribute):
        parts.append(cur.attr)
        cur = cur.value
    if isinstance(cur, ast.Name):
        parts.append(cur.id)
        return ".".join(reversed(parts))
    return None


def _contains_id_call(node: ast.AST) -> Optional[ast.Call]:
    """The first ``id(...)`` call anywhere inside ``node``, else None."""
    for sub in ast.walk(node):
        if (
            isinstance(sub, ast.Call)
            and isinstance(sub.func, ast.Name)
            and sub.func.id == "id"
        ):
            return sub
    return None


def _self_attr(node: ast.AST) -> Optional[str]:
    """``name`` when ``node`` is ``self.name``, else None."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


# -- DET101: process-global mutable counters ----------------------------------


@register
class GlobalCounterRule(Rule):
    id = "DET101"
    name = "global-counter"
    requires = "sim"
    doc = (
        "No module/class-level itertools.count or rebinding of module "
        "globals in sim-reachable code: process-global allocation state "
        "leaks across same-seed runs in one process."
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        count_aliases = {"itertools.count"}
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ImportFrom) and node.module == "itertools":
                for alias in node.names:
                    if alias.name == "count":
                        count_aliases.add(alias.asname or alias.name)

        # Module- and class-level statements (not function bodies).
        def shared_statements(body, depth_into_if=True):
            for stmt in body:
                yield stmt
                if isinstance(stmt, ast.ClassDef):
                    yield from shared_statements(stmt.body)
                elif isinstance(stmt, (ast.If, ast.Try)) and depth_into_if:
                    for sub in (
                        getattr(stmt, "body", []),
                        getattr(stmt, "orelse", []),
                        getattr(stmt, "finalbody", []),
                    ):
                        yield from shared_statements(sub)

        for stmt in shared_statements(ctx.tree.body):
            value = None
            if isinstance(stmt, ast.Assign):
                value = stmt.value
            elif isinstance(stmt, ast.AnnAssign):
                value = stmt.value
            if (
                isinstance(value, ast.Call)
                and _dotted_name(value.func) in count_aliases
            ):
                yield ctx.finding(
                    self,
                    stmt,
                    "module/class-level itertools.count() is process-global "
                    "allocation state; allocate ids per simulator/instance",
                )

        # `global NAME` + rebinding: a module-global mutable counter.
        for fn in ast.walk(ctx.tree):
            if not isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            declared: Set[str] = set()
            for stmt in ast.walk(fn):
                if isinstance(stmt, ast.Global):
                    declared.update(stmt.names)
            if not declared:
                continue
            for stmt in ast.walk(fn):
                targets = []
                if isinstance(stmt, ast.Assign):
                    targets = stmt.targets
                elif isinstance(stmt, (ast.AugAssign, ast.AnnAssign)):
                    targets = [stmt.target]
                for target in targets:
                    if isinstance(target, ast.Name) and target.id in declared:
                        yield ctx.finding(
                            self,
                            stmt,
                            f"function rebinds module global {target.id!r} — "
                            "process-global mutable state in sim-reachable "
                            "code",
                        )


# -- DET102: iteration order over object sets / id() ordering ------------------

_PRIMITIVE_ANNOTATIONS = {
    "str", "int", "float", "bool", "bytes", "complex",
    "Tuple", "tuple", "FrozenSet", "frozenset",
}


def _annotation_primitive(annotation: Optional[ast.AST]) -> Optional[bool]:
    """True/False when the Set[...] element type is knowably (non-)primitive."""
    if annotation is None:
        return None
    # Set[X] / set[X]
    if isinstance(annotation, ast.Subscript):
        base = _dotted_name(annotation.value) or ""
        if base.split(".")[-1] not in ("Set", "set", "MutableSet"):
            return None
        elem = annotation.slice
        names = {
            _dotted_name(sub)
            for sub in ast.walk(elem)
            if isinstance(sub, (ast.Name, ast.Attribute))
        }
        names = {n.split(".")[-1] for n in names if n}
        if not names:
            return None
        return names <= _PRIMITIVE_ANNOTATIONS
    return None


@register
class ObjectSetOrderRule(Rule):
    id = "DET102"
    name = "object-set-order"
    requires = "sim"
    doc = (
        "No iteration/pop/sort/list() over sets of non-primitive objects and "
        "no id() in mapping keys or sort keys: both order by memory address."
    )

    _ITER_MSG = (
        "iterates a set whose elements are not provably primitive — set "
        "order is id()-hash order; use an insertion-ordered dict, sort by a "
        "value key, or annotate the binding Set[<primitive>]"
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        # Pass 1: collect set-typed bindings (module/function names and
        # `self.attr`), with primitiveness when inferable.
        sets: Dict[str, bool] = {}  # binding key -> elements_primitive

        def record(key: str, primitive: Optional[bool]) -> None:
            if primitive is None:
                primitive = False  # unknown counts as suspect
            # A binding seen with any suspect assignment stays suspect.
            sets[key] = sets.get(key, True) and primitive

        def binding_key(target: ast.AST) -> Optional[str]:
            attr = _self_attr(target)
            if attr is not None:
                return f"self.{attr}"
            if isinstance(target, ast.Name):
                return target.id
            return None

        def value_set_primitive(value: ast.AST) -> Optional[Optional[bool]]:
            """None = not a set; else True/False/unknown primitiveness."""
            if isinstance(value, ast.Call):
                name = _dotted_name(value.func)
                if name in ("set", "builtins.set"):
                    if not value.args:
                        return "unknown"
                    return "unknown"
                return None
            if isinstance(value, ast.Set):
                if all(isinstance(e, ast.Constant) for e in value.elts):
                    return True
                return False
            return None

        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.AnnAssign) and node.value is not None:
                kind = value_set_primitive(node.value)
                if kind is not None:
                    key = binding_key(node.target)
                    if key:
                        prim = _annotation_primitive(node.annotation)
                        record(key, prim if kind == "unknown" else kind)
            elif isinstance(node, ast.Assign):
                kind = value_set_primitive(node.value)
                if kind is not None:
                    for target in node.targets:
                        key = binding_key(target)
                        if key:
                            record(
                                key, None if kind == "unknown" else kind
                            )

        def is_suspect_set(expr: ast.AST) -> bool:
            key = None
            attr = _self_attr(expr)
            if attr is not None:
                key = f"self.{attr}"
            elif isinstance(expr, ast.Name):
                key = expr.id
            if key is None:
                return False
            return key in sets and not sets[key]

        # Pass 2: flag ordering-sensitive consumption.
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.For) and is_suspect_set(node.iter):
                yield ctx.finding(self, node, self._ITER_MSG)
            elif isinstance(
                node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)
            ):
                for gen in node.generators:
                    if is_suspect_set(gen.iter):
                        yield ctx.finding(self, node, self._ITER_MSG)
            elif isinstance(node, ast.For) and isinstance(node.iter, ast.Set):
                if not all(
                    isinstance(e, ast.Constant) for e in node.iter.elts
                ):
                    yield ctx.finding(
                        self,
                        node,
                        "iterates a set literal of objects — set order is "
                        "id()-hash order",
                    )
            elif isinstance(node, ast.Call):
                name = _dotted_name(node.func)
                # set.pop() — removal order is id()-hash order.
                if (
                    isinstance(node.func, ast.Attribute)
                    and node.func.attr == "pop"
                    and not node.args
                    and not node.keywords
                    and is_suspect_set(node.func.value)
                ):
                    yield ctx.finding(
                        self,
                        node,
                        "set.pop() removes in id()-hash order; pop from a "
                        "deque or insertion-ordered dict instead",
                    )
                # list/tuple(X) over a suspect set leaks id()-hash order
                # into a sequence.  sorted()/min()/max() are NOT flagged:
                # they impose deterministic value order (and raise TypeError
                # on unorderable elements rather than silently diverging).
                elif name in ("list", "tuple") and (
                    node.args and is_suspect_set(node.args[0])
                ):
                    yield ctx.finding(
                        self,
                        node,
                        f"{name}() over a set of objects freezes id()-hash "
                        "order into a sequence; sort by a value key or keep "
                        "an ordered structure",
                    )
                # id() as a sort key.
                if name in ("sorted", "min", "max"):
                    for kw in node.keywords:
                        if kw.arg != "key":
                            continue
                        if (
                            isinstance(kw.value, ast.Name)
                            and kw.value.id == "id"
                        ) or (
                            isinstance(kw.value, ast.Lambda)
                            and _contains_id_call(kw.value.body)
                        ):
                            yield ctx.finding(
                                self,
                                node,
                                "sort key uses id(): ordering by memory "
                                "address is allocation-dependent",
                            )
                elif (
                    isinstance(node.func, ast.Attribute)
                    and node.func.attr == "sort"
                ):
                    for kw in node.keywords:
                        if kw.arg == "key" and (
                            (
                                isinstance(kw.value, ast.Name)
                                and kw.value.id == "id"
                            )
                            or (
                                isinstance(kw.value, ast.Lambda)
                                and _contains_id_call(kw.value.body)
                            )
                        ):
                            yield ctx.finding(
                                self,
                                node,
                                "sort key uses id(): ordering by memory "
                                "address is allocation-dependent",
                            )
            elif isinstance(node, ast.Subscript):
                id_call = _contains_id_call(node.slice)
                if id_call is not None:
                    yield ctx.finding(
                        self,
                        node,
                        "id() used as a mapping key: safe only for an "
                        "insertion-ordered dict that is never sorted or "
                        "iterated by key — prefer a value key",
                    )


# -- DET103: wall clock, unseeded RNG, environment ----------------------------

_BANNED_TIME = {
    "time", "time_ns", "monotonic", "monotonic_ns", "perf_counter",
    "perf_counter_ns", "process_time", "process_time_ns", "clock_gettime",
    "localtime", "gmtime", "ctime", "sleep",
}
_UNSEEDED_RANDOM = {
    "random", "randint", "randrange", "uniform", "choice", "choices",
    "shuffle", "sample", "gauss", "normalvariate", "expovariate",
    "betavariate", "triangular", "getrandbits", "randbytes", "seed",
    "vonmisesvariate", "paretovariate", "weibullvariate", "lognormvariate",
}
_BANNED_DATETIME = {"now", "utcnow", "today"}


@register
class WallClockRule(Rule):
    id = "DET103"
    name = "wall-clock"
    requires = "sim"
    doc = (
        "No wall-clock reads, unseeded module-level random, os.environ, pid "
        "or uuid in sim-reachable code: sim time comes from the kernel, "
        "randomness from a seeded random.Random."
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        # Alias maps: local name -> canonical module, and names imported
        # from banned modules -> (module, original name).
        module_alias: Dict[str, str] = {}
        from_alias: Dict[str, Tuple[str, str]] = {}
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    root = alias.name.split(".")[0]
                    if root in ("time", "random", "os", "datetime", "uuid"):
                        module_alias[alias.asname or root] = root
            elif isinstance(node, ast.ImportFrom) and node.module:
                root = node.module.split(".")[0]
                if root in ("time", "random", "os", "datetime", "uuid"):
                    for alias in node.names:
                        from_alias[alias.asname or alias.name] = (
                            root, alias.name,
                        )

        def resolve(func: ast.AST) -> Optional[Tuple[str, str]]:
            """(module, function) when the call resolves to a banned module."""
            name = _dotted_name(func)
            if not name:
                return None
            parts = name.split(".")
            head = parts[0]
            if head in module_alias and len(parts) >= 2:
                return module_alias[head], ".".join(parts[1:])
            if head in from_alias and len(parts) == 1:
                return from_alias[head][0], from_alias[head][1]
            if head in from_alias and len(parts) >= 2:
                # e.g. `from datetime import datetime` then datetime.now()
                mod, orig = from_alias[head]
                return mod, f"{orig}." + ".".join(parts[1:])
            return None

        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call):
                resolved = resolve(node.func)
                if resolved is None:
                    continue
                mod, fn = resolved
                tail = fn.split(".")[-1]
                if mod == "time" and tail in _BANNED_TIME:
                    yield ctx.finding(
                        self,
                        node,
                        f"wall-clock call time.{tail}(): simulated time "
                        "comes from Simulator.now",
                    )
                elif mod == "datetime" and tail in _BANNED_DATETIME:
                    yield ctx.finding(
                        self,
                        node,
                        f"wall-clock call datetime …{tail}(): timestamps "
                        "must derive from sim time or the spec",
                    )
                elif mod == "random":
                    if tail == "Random":
                        if not node.args and not node.keywords:
                            yield ctx.finding(
                                self,
                                node,
                                "random.Random() without a seed draws from "
                                "OS entropy; pass an explicit seed",
                            )
                    elif tail in _UNSEEDED_RANDOM and fn == tail:
                        yield ctx.finding(
                            self,
                            node,
                            f"module-level random.{tail}() uses the shared "
                            "unseeded RNG; draw from a seeded "
                            "random.Random instance",
                        )
                elif mod == "os" and tail in ("getenv", "getpid"):
                    yield ctx.finding(
                        self,
                        node,
                        f"os.{tail}() read in sim-reachable code: behaviour "
                        "must be a function of (spec, seed) only",
                    )
                elif mod == "uuid" and tail in ("uuid1", "uuid4"):
                    yield ctx.finding(
                        self,
                        node,
                        f"uuid.{tail}() is nondeterministic; derive ids "
                        "from per-instance sequence numbers",
                    )
            elif isinstance(node, ast.Attribute):
                name = _dotted_name(node)
                if (
                    name == "os.environ"
                    or (
                        name is not None
                        and "." not in name.partition(".")[2]
                        and module_alias.get(name.split(".")[0]) == "os"
                        and name.split(".")[1] == "environ"
                    )
                ):
                    yield ctx.finding(
                        self,
                        node,
                        "os.environ read in sim-reachable code: environment "
                        "must not influence a seeded run",
                    )
            elif isinstance(node, ast.ImportFrom) and node.module == "os":
                for alias in node.names:
                    if alias.name == "environ":
                        yield ctx.finding(
                            self,
                            node,
                            "imports os.environ into sim-reachable code: "
                            "environment must not influence a seeded run",
                        )


# -- DET104: zero-overhead hook idiom ------------------------------------------

_HOOKISH = re.compile(r"(?:^|_)(?:hook|hooks|tracer|chaos)$")


@register
class HookTruthinessRule(Rule):
    id = "DET104"
    name = "hook-idiom"
    requires = "sim"
    doc = (
        "Chaos/trace hook sites must gate with `if hook is not None`: the "
        "explicit identity test is the measured zero-overhead-off idiom "
        "(and a falsy-but-armed hook must still fire)."
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        def hookish(expr: ast.AST) -> Optional[str]:
            if isinstance(expr, ast.Name) and _HOOKISH.search(expr.id):
                return expr.id
            if isinstance(expr, ast.Attribute) and _HOOKISH.search(expr.attr):
                return _dotted_name(expr) or expr.attr
            return None

        def flag(expr: ast.AST) -> Iterator[Finding]:
            name = hookish(expr)
            if name is not None:
                yield ctx.finding(
                    self,
                    expr,
                    f"truthiness test on hook {name!r}; use "
                    f"`{name} is not None` (ROADMAP zero-overhead hook "
                    "idiom)",
                )

        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.If, ast.While, ast.IfExp)):
                test = node.test
                if isinstance(test, ast.UnaryOp) and isinstance(
                    test.op, ast.Not
                ):
                    test = test.operand
                yield from flag(test)
            elif isinstance(node, ast.BoolOp):
                for value in node.values:
                    yield from flag(value)


# -- DET105: __slots__ advisory ------------------------------------------------

_NON_SLOTS_BASES = re.compile(
    r"(Exception|Error|Enum|Flag|NamedTuple|Protocol|TypedDict|ABC)$"
)


@register
class SlotsAdvisoryRule(Rule):
    id = "DET105"
    name = "missing-slots"
    severity = SEVERITY_ADVISORY
    requires = "hot-path"
    doc = (
        "Hot-path classes in sim/ and engine/ should declare __slots__ "
        "(advisory): per-instance dicts dominate allocation in the event "
        "loop."
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            base_names = {
                (_dotted_name(b) or "").split(".")[-1] for b in node.bases
            }
            # Exception trees (by base or by naming convention) are not hot
            # allocation paths; instances are rare and carry tracebacks.
            if any(_NON_SLOTS_BASES.search(b) for b in base_names if b):
                continue
            if _NON_SLOTS_BASES.search(node.name):
                continue
            decorators = {
                (_dotted_name(
                    d.func if isinstance(d, ast.Call) else d
                ) or "").split(".")[-1]
                for d in node.decorator_list
            }
            if "dataclass" in decorators:
                slotted = any(
                    isinstance(d, ast.Call)
                    and any(
                        k.arg == "slots"
                        and isinstance(k.value, ast.Constant)
                        and k.value.value is True
                        for k in d.keywords
                    )
                    for d in node.decorator_list
                )
                if not slotted:
                    yield ctx.finding(
                        self,
                        node,
                        f"dataclass {node.name!r} without slots=True on a "
                        "hot path",
                    )
                continue
            class_attrs: Set[str] = set()
            has_slots = False
            init: Optional[ast.FunctionDef] = None
            for stmt in node.body:
                if isinstance(stmt, ast.Assign):
                    for target in stmt.targets:
                        if isinstance(target, ast.Name):
                            class_attrs.add(target.id)
                            if target.id == "__slots__":
                                has_slots = True
                elif isinstance(stmt, ast.AnnAssign) and isinstance(
                    stmt.target, ast.Name
                ):
                    class_attrs.add(stmt.target.id)
                    if stmt.target.id == "__slots__":
                        has_slots = True
                elif (
                    isinstance(stmt, ast.FunctionDef)
                    and stmt.name == "__init__"
                ):
                    init = stmt
            if has_slots or init is None:
                continue
            self_names: Set[str] = set()
            for stmt in ast.walk(init):
                if isinstance(stmt, (ast.Assign, ast.AnnAssign)):
                    targets = (
                        stmt.targets
                        if isinstance(stmt, ast.Assign)
                        else [stmt.target]
                    )
                    for target in targets:
                        attr = _self_attr(target)
                        if attr:
                            self_names.add(attr)
            if not self_names:
                continue
            if self_names & class_attrs:
                # Class-attr default pattern (e.g. Handle.cancelled):
                # __slots__ of the same name would shadow-conflict; not free.
                continue
            yield ctx.finding(
                self,
                node,
                f"class {node.name!r} stores instance state but declares no "
                "__slots__ (advisory: free win on hot paths)",
            )


# -- DET106: pickled memo caches ----------------------------------------------

_CACHE_ATTR = re.compile(r"(?:^|_)(?:memo|cache|cached)(?:_|$|s$|d$)")


@register
class PickleMemoRule(Rule):
    id = "DET106"
    name = "pickled-memo-cache"
    requires = "pool-crossing"
    doc = (
        "Classes whose objects cross the process pool must not pickle memo/"
        "cache attributes: define __getstate__ dropping them (payload bloat "
        "and stale-cache bugs)."
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            has_getstate = any(
                isinstance(stmt, ast.FunctionDef)
                and stmt.name in ("__getstate__", "__reduce__", "__reduce_ex__")
                for stmt in node.body
            )
            if has_getstate:
                continue
            init = next(
                (
                    stmt
                    for stmt in node.body
                    if isinstance(stmt, ast.FunctionDef)
                    and stmt.name == "__init__"
                ),
                None,
            )
            if init is None:
                continue
            for stmt in ast.walk(init):
                if not isinstance(stmt, (ast.Assign, ast.AnnAssign)):
                    continue
                targets = (
                    stmt.targets
                    if isinstance(stmt, ast.Assign)
                    else [stmt.target]
                )
                value = stmt.value
                dictish = isinstance(value, ast.Dict) or (
                    isinstance(value, ast.Call)
                    and (_dotted_name(value.func) or "").split(".")[-1]
                    in ("dict", "defaultdict", "OrderedDict", "lru_cache")
                )
                if not dictish:
                    continue
                for target in targets:
                    attr = _self_attr(target)
                    if attr and _CACHE_ATTR.search(attr):
                        yield ctx.finding(
                            self,
                            stmt,
                            f"memo/cache attribute {attr!r} in class "
                            f"{node.name!r} will be pickled across the "
                            "process pool; add __getstate__ that drops it",
                        )


# -- DET107: identity-keyed comprehensions in coordination code ---------------


@register
class IdentityComprehensionRule(Rule):
    id = "DET107"
    name = "identity-comprehension"
    requires = "coord-core"
    doc = (
        "No dict/set comprehensions or literals keyed on id() in coord/ and "
        "core/: coordination decisions must never depend on memory layout."
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.DictComp):
                if _contains_id_call(node.key):
                    yield ctx.finding(
                        self,
                        node,
                        "dict comprehension keyed on id(): identity keys in "
                        "coordination state order by memory address",
                    )
            elif isinstance(node, ast.SetComp):
                if _contains_id_call(node.elt):
                    yield ctx.finding(
                        self,
                        node,
                        "set comprehension of id() values: identity sets in "
                        "coordination state order by memory address",
                    )
            elif isinstance(node, ast.Dict):
                for key in node.keys:
                    if key is not None and _contains_id_call(key):
                        yield ctx.finding(
                            self,
                            node,
                            "dict literal keyed on id() in coordination "
                            "code",
                        )
            elif isinstance(node, ast.Set):
                for elt in node.elts:
                    if _contains_id_call(elt):
                        yield ctx.finding(
                            self,
                            node,
                            "set literal of id() values in coordination "
                            "code",
                        )


# -- DET108: bare except in sim coroutines ------------------------------------


@register
class BareExceptRule(Rule):
    id = "DET108"
    name = "bare-except"
    requires = "sim"
    doc = (
        "No bare `except:` (or `except BaseException:` without re-raise) in "
        "sim-reachable code: it swallows GeneratorExit/ProcessKilled and "
        "masks kill-order bugs."
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                yield ctx.finding(
                    self,
                    node,
                    "bare except swallows GeneratorExit/ProcessKilled in "
                    "sim coroutines; catch Exception (or narrower)",
                )
                continue
            names = {
                (_dotted_name(t) or "")
                for t in (
                    node.type.elts
                    if isinstance(node.type, ast.Tuple)
                    else [node.type]
                )
            }
            if "BaseException" in names:
                reraises = any(
                    isinstance(stmt, ast.Raise) and stmt.exc is None
                    for stmt in ast.walk(node)
                )
                if not reraises:
                    yield ctx.finding(
                        self,
                        node,
                        "except BaseException without re-raise swallows "
                        "GeneratorExit/ProcessKilled in sim coroutines",
                    )
