"""Module classification for detlint: which rules apply where.

Rules are scoped by *reachability tags* rather than per-file switches.  A
file's repo-relative path (the part from ``repro/`` down) is matched against
ordered prefix lists:

``tooling``
    Code that never runs inside a seeded simulation: the analyzer itself,
    the experiments CLI, the process-pool worker plumbing (which legitimately
    uses wall-clock timeouts and pids), the result cache (atomic-rename
    tempfiles keyed by pid), golden snapshots, and trace exporters.  Files
    outside any ``repro`` package (tests, benchmarks, examples) are tooling
    too.

``sim``
    Everything else under ``repro/`` — code reachable from a seeded run,
    where wall-clock reads, unseeded RNG, id()-ordering and process-global
    counters break bit-identical replay.

Structural tags refine ``sim``/``tooling`` for the narrower rules:

``hot-path``
    ``sim/`` and ``engine/`` — the per-event/per-txn code where ``__slots__``
    is advised (DET105).

``pool-crossing``
    ``cluster/`` and ``experiments/`` — modules whose objects ride inside
    ``PortableRunResult``/``CellFailure`` across the process pool, where a
    pickled memo cache is a payload bug (DET106).

``coord-core``
    ``coord/`` and ``core/`` — the coordination protocols, where an
    identity-keyed comprehension silently orders by ``id()`` (DET107).

A fixture or generated file can override classification with a pragma in its
first few lines::

    # detlint: scope=sim,hot-path
"""

from __future__ import annotations

from pathlib import PurePath
from typing import Optional, Set

__all__ = [
    "KNOWN_TAGS",
    "repo_relative",
    "tags_for_path",
]

#: Every tag a pragma may name.
KNOWN_TAGS = frozenset(
    {"sim", "tooling", "hot-path", "pool-crossing", "coord-core"}
)

#: Repo-relative prefixes of sim-package files that are *not* sim-reachable.
_TOOLING_PREFIXES = (
    "repro/analysis/",
    "repro/experiments/__main__.py",
    "repro/experiments/parallel.py",
    "repro/experiments/cache.py",
    "repro/experiments/goldens.py",
    "repro/obs/__main__.py",
    "repro/obs/export.py",
)

_HOT_PATH_PREFIXES = ("repro/sim/", "repro/engine/")
_POOL_CROSSING_PREFIXES = ("repro/cluster/", "repro/experiments/")
_COORD_CORE_PREFIXES = ("repro/coord/", "repro/core/")


def repo_relative(path) -> Optional[str]:
    """The ``repro/...`` tail of ``path``, or None if outside the package."""
    parts = PurePath(path).as_posix().split("/")
    for i in range(len(parts) - 1, -1, -1):
        if parts[i] == "repro":
            return "/".join(parts[i:])
    return None


def tags_for_path(path) -> Set[str]:
    """Classify ``path`` into reachability tags (see module docstring)."""
    rel = repo_relative(path)
    if rel is None:
        return {"tooling"}
    tags: Set[str] = set()
    if any(rel.startswith(p) for p in _POOL_CROSSING_PREFIXES):
        tags.add("pool-crossing")
    if any(rel.startswith(p) for p in _TOOLING_PREFIXES):
        tags.add("tooling")
        return tags
    tags.add("sim")
    if any(rel.startswith(p) for p in _HOT_PATH_PREFIXES):
        tags.add("hot-path")
    if any(rel.startswith(p) for p in _COORD_CORE_PREFIXES):
        tags.add("coord-core")
    return tags
