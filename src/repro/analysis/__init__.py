"""detlint: AST-based determinism & sim-safety lint for this repo.

The repo's core guarantee — seeded runs are bit-identical — keeps being
threatened by the same few Python hazard classes (process-global counters,
id()-ordered set iteration, wall-clock reads, pickled memo caches).  This
package catches them statically, at commit time, instead of at runtime via
expensive sweeps.  See ANALYSIS.md for the rule catalogue and the historical
bug each rule encodes; run ``python -m repro.analysis src/``.
"""

from repro.analysis.baseline import (
    apply_baseline,
    fingerprints,
    load_baseline,
    write_baseline,
)
from repro.analysis.framework import (
    Finding,
    ModuleContext,
    Rule,
    all_rules,
    analyze_paths,
    analyze_source,
    get_rule,
    register,
)

__all__ = [
    "Finding",
    "ModuleContext",
    "Rule",
    "all_rules",
    "analyze_paths",
    "analyze_source",
    "apply_baseline",
    "fingerprints",
    "get_rule",
    "load_baseline",
    "register",
    "write_baseline",
]
