"""Baseline snapshots: suppress known findings without editing code.

A baseline is a JSON file of finding *fingerprints*.  Fingerprints hash the
(rule, path, stripped line text, per-line ordinal) — not the line number —
so unrelated edits above a finding don't invalidate the snapshot, while
editing the flagged line itself does (the finding resurfaces for re-triage).

Intended flow: ``--write-baseline detlint-baseline.json`` once to adopt the
linter on a codebase with pre-existing findings, then burn the list down;
this repo's own baseline is empty — ``src/`` lints clean.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Dict, Iterable, List, Set, Tuple

from repro.analysis.framework import Finding

__all__ = [
    "apply_baseline",
    "fingerprints",
    "load_baseline",
    "write_baseline",
]

_VERSION = 1


def _fingerprint(finding: Finding, ordinal: int) -> str:
    payload = "|".join(
        (finding.rule, finding.path, finding.line_text.strip(), str(ordinal))
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


def fingerprints(findings: Iterable[Finding]) -> List[str]:
    """Stable fingerprints, disambiguating identical lines by ordinal."""
    seen: Dict[Tuple[str, str, str], int] = {}
    out: List[str] = []
    for finding in findings:
        key = (finding.rule, finding.path, finding.line_text.strip())
        ordinal = seen.get(key, 0)
        seen[key] = ordinal + 1
        out.append(_fingerprint(finding, ordinal))
    return out


def write_baseline(path, findings: Iterable[Finding]) -> None:
    """Snapshot every unwaived finding (errors and advisories) to ``path``."""
    relevant = [f for f in findings if not f.waived]
    doc = {
        "version": _VERSION,
        "fingerprints": sorted(fingerprints(relevant)),
    }
    Path(path).write_text(
        json.dumps(doc, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )


def load_baseline(path) -> Set[str]:
    doc = json.loads(Path(path).read_text(encoding="utf-8"))
    if doc.get("version") != _VERSION:
        raise ValueError(
            f"unsupported baseline version {doc.get('version')!r} in {path}"
        )
    prints = doc.get("fingerprints")
    if not isinstance(prints, list):
        raise ValueError(f"malformed baseline file {path}")
    return set(prints)


def apply_baseline(findings: List[Finding], baseline: Set[str]) -> None:
    """Mark findings whose fingerprint appears in ``baseline`` suppressed."""
    for finding, print_ in zip(findings, fingerprints(findings)):
        if print_ in baseline and not finding.waived:
            finding.suppressed = True
