"""detlint core: findings, inline waivers, module contexts, rule registry.

The analyzer is a plain single-file-at-a-time AST pass (stdlib ``ast``, no
third-party deps).  Each *rule* is a small object with an ``id``, a severity
tier and a ``check(ctx)`` generator; rules self-register into a module-level
registry and are scoped by reachability tags (:mod:`repro.analysis.config`).

Severity tiers
--------------
``error``
    Gates CI: ``python -m repro.analysis src/`` exits non-zero while any
    unsuppressed, unwaived error finding exists.
``advisory``
    Reported but never gates (e.g. the ``__slots__`` advice, DET105).

Inline waivers
--------------
A finding is waived in place with a comment **that must carry a reason**::

    self._active[id(event)] = entry  # detlint: ok(DET102) — insertion-ordered dict, id is an opaque handle

    # detlint: ok(DET103) — tooling clock, never inside a seeded run
    started = time.time()

A trailing waiver covers its own line; a comment-only waiver line covers the
next line.  ``ok(...)`` may list several rule ids separated by commas.  A
waiver with no reason, or naming an unknown rule id, is itself an error
finding (DET100) — silence must be auditable.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from repro.analysis.config import KNOWN_TAGS, tags_for_path

__all__ = [
    "Finding",
    "ModuleContext",
    "Rule",
    "all_rules",
    "analyze_paths",
    "analyze_source",
    "get_rule",
    "iter_python_files",
    "register",
]

SEVERITY_ERROR = "error"
SEVERITY_ADVISORY = "advisory"

#: ``# detlint: ok(DET101, DET102) — reason`` (reason separator: em-dash,
#: ``--``, ``-`` or ``:``).
_WAIVER_RE = re.compile(
    r"detlint:\s*ok\(\s*(?P<rules>[A-Za-z0-9_\s,-]*?)\s*\)"
    r"(?:\s*(?:—|--|-|:)\s*(?P<reason>\S.*?))?\s*$"
)
#: ``# detlint: scope=sim,hot-path`` — file-level classification override.
_SCOPE_RE = re.compile(r"detlint:\s*scope\s*=\s*(?P<tags>[A-Za-z0-9_,\s-]+)")


@dataclass
class Finding:
    """One diagnostic, anchored to a (path, line) with the offending text."""

    rule: str
    path: str
    line: int
    col: int
    message: str
    severity: str = SEVERITY_ERROR
    line_text: str = ""
    waived: bool = False
    waiver_reason: str = ""
    suppressed: bool = False  # matched a --baseline fingerprint

    @property
    def gates(self) -> bool:
        """True when this finding should fail the run."""
        return (
            self.severity == SEVERITY_ERROR
            and not self.waived
            and not self.suppressed
        )

    def to_dict(self) -> dict:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "severity": self.severity,
            "message": self.message,
            "line_text": self.line_text,
            "waived": self.waived,
            "waiver_reason": self.waiver_reason,
            "suppressed": self.suppressed,
        }


@dataclass
class _Waiver:
    rules: Tuple[str, ...]
    reason: str
    comment_line: int


@dataclass
class ModuleContext:
    """Everything a rule needs about one source file."""

    path: str
    source: str
    tree: ast.Module
    tags: Set[str]
    lines: List[str] = field(default_factory=list)
    #: Effective source line -> waivers covering it.
    waivers: Dict[int, List[_Waiver]] = field(default_factory=dict)

    def line_text(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1].rstrip("\n")
        return ""

    def finding(
        self,
        rule: "Rule",
        node,
        message: str,
    ) -> Finding:
        lineno = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        return Finding(
            rule=rule.id,
            path=self.path,
            line=lineno,
            col=col + 1,
            message=message,
            severity=rule.severity,
            line_text=self.line_text(lineno).strip()[:200],
        )


class Rule:
    """Base class: subclass, set the class attributes, implement ``check``."""

    id: str = ""
    name: str = ""
    severity: str = SEVERITY_ERROR
    #: Reachability tag a file must carry for this rule to run.
    requires: str = "sim"
    #: One-line rationale (shown by ``--list-rules``; the historical bug the
    #: rule encodes lives in ANALYSIS.md).
    doc: str = ""

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        raise NotImplementedError


_REGISTRY: Dict[str, Rule] = {}


def register(cls):
    """Class decorator: instantiate and add to the rule registry."""
    inst = cls()
    if not inst.id:
        raise ValueError(f"rule {cls.__name__} has no id")
    if inst.id in _REGISTRY:
        raise ValueError(f"duplicate rule id {inst.id}")
    _REGISTRY[inst.id] = inst
    return cls


def all_rules() -> List[Rule]:
    _ensure_rules_loaded()
    return [_REGISTRY[rid] for rid in sorted(_REGISTRY)]


def get_rule(rule_id: str) -> Rule:
    _ensure_rules_loaded()
    return _REGISTRY[rule_id]


def _ensure_rules_loaded() -> None:
    # Import side effect registers the built-in rules exactly once.
    from repro.analysis import rules as _rules  # noqa: F401


def known_rule_ids() -> Set[str]:
    _ensure_rules_loaded()
    return set(_REGISTRY)


# -- waiver / pragma parsing ---------------------------------------------------


def _iter_comments(source: str) -> Iterator[Tuple[int, int, str]]:
    """Yield ``(line, col, text)`` for each comment; robust to bad syntax."""
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for tok in tokens:
            if tok.type == tokenize.COMMENT:
                yield tok.start[0], tok.start[1], tok.string
    except (tokenize.TokenError, SyntaxError, IndentationError):
        # Fall back to a line scan; good enough for fixtures mid-edit.
        for i, line in enumerate(source.splitlines(), start=1):
            pos = line.find("#")
            if pos >= 0:
                yield i, pos, line[pos:]


def _parse_waivers(
    ctx: ModuleContext, waiver_rule: "Rule"
) -> List[Finding]:
    """Populate ``ctx.waivers``; malformed waivers become DET100 findings."""
    findings: List[Finding] = []
    known = known_rule_ids()
    for lineno, col, text in _iter_comments(ctx.source):
        if "detlint:" not in text:
            continue
        if _SCOPE_RE.search(text) and "ok(" not in text:
            continue  # scope pragma, handled at classification time
        match = _WAIVER_RE.search(text)
        if match is None:
            continue
        rule_ids = tuple(
            r.strip() for r in match.group("rules").split(",") if r.strip()
        )
        reason = (match.group("reason") or "").strip()
        anchor = Finding(
            rule=waiver_rule.id,
            path=ctx.path,
            line=lineno,
            col=col + 1,
            message="",
            severity=waiver_rule.severity,
            line_text=ctx.line_text(lineno).strip()[:200],
        )
        if not rule_ids:
            anchor.message = "waiver names no rule ids: use ok(DETxxx) — reason"
            findings.append(anchor)
            continue
        unknown = [r for r in rule_ids if r not in known]
        if unknown:
            anchor.message = (
                f"waiver names unknown rule id(s): {', '.join(unknown)}"
            )
            findings.append(anchor)
            continue
        if not reason:
            anchor.message = (
                f"waiver ok({', '.join(rule_ids)}) carries no reason — every "
                "suppression must say why it is safe"
            )
            findings.append(anchor)
            continue
        waiver = _Waiver(rules=rule_ids, reason=reason, comment_line=lineno)
        # A comment-only line covers the next line; a trailing comment covers
        # its own.  Register both generously: the line itself and, when the
        # comment stands alone, the following line.
        before = ctx.line_text(lineno)[:col]
        ctx.waivers.setdefault(lineno, []).append(waiver)
        if not before.strip():
            ctx.waivers.setdefault(lineno + 1, []).append(waiver)
    return findings


def _scope_pragma(source: str) -> Optional[Set[str]]:
    """Tags from a ``# detlint: scope=...`` pragma in the first 10 lines."""
    for line in source.splitlines()[:10]:
        stripped = line.strip()
        if not stripped.startswith("#"):
            continue
        match = _SCOPE_RE.search(stripped)
        if match:
            tags = {
                t.strip() for t in match.group("tags").split(",") if t.strip()
            }
            bad = tags - KNOWN_TAGS
            if bad:
                raise ValueError(
                    f"unknown scope tag(s) in pragma: {sorted(bad)}"
                )
            return tags
    return None


# -- built-in framework rules --------------------------------------------------


class _WaiverHygieneRule(Rule):
    id = "DET100"
    name = "waiver-hygiene"
    severity = SEVERITY_ERROR
    requires = "*"
    doc = (
        "Every inline waiver must name known rule ids and carry a reason "
        "string; an unexplained suppression is itself a finding."
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:  # pragma: no cover
        return iter(())  # emitted by the framework during waiver parsing


class _ParseErrorRule(Rule):
    id = "DET000"
    name = "parse-error"
    severity = SEVERITY_ERROR
    requires = "*"
    doc = "The file does not parse; nothing else can be checked."

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:  # pragma: no cover
        return iter(())


_WAIVER_RULE = _WaiverHygieneRule()
_PARSE_RULE = _ParseErrorRule()
_REGISTRY[_WAIVER_RULE.id] = _WAIVER_RULE
_REGISTRY[_PARSE_RULE.id] = _PARSE_RULE


# -- drivers -------------------------------------------------------------------


def analyze_source(
    source: str,
    path: str = "<string>",
    tags: Optional[Set[str]] = None,
    rules: Optional[Sequence[Rule]] = None,
) -> List[Finding]:
    """Run the rule suite over one source blob; returns all findings."""
    if tags is None:
        tags = _scope_pragma(source) or tags_for_path(path)
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        return [
            Finding(
                rule=_PARSE_RULE.id,
                path=path,
                line=exc.lineno or 1,
                col=(exc.offset or 0) or 1,
                message=f"syntax error: {exc.msg}",
                severity=SEVERITY_ERROR,
            )
        ]
    ctx = ModuleContext(
        path=path,
        source=source,
        tree=tree,
        tags=tags,
        lines=source.splitlines(),
    )
    findings = _parse_waivers(ctx, _WAIVER_RULE)
    if rules is None:
        rules = all_rules()
    for rule in rules:
        if rule.requires not in ("*",) and rule.requires not in ctx.tags:
            continue
        if rule.id in (_WAIVER_RULE.id, _PARSE_RULE.id):
            continue
        findings.extend(rule.check(ctx))
    _apply_waivers(ctx, findings)
    findings.sort(key=lambda f: (f.line, f.col, f.rule))
    return findings


def _apply_waivers(ctx: ModuleContext, findings: List[Finding]) -> None:
    for finding in findings:
        if finding.rule == _WAIVER_RULE.id:
            continue  # waiver hygiene findings cannot be waived
        for waiver in ctx.waivers.get(finding.line, ()):
            if finding.rule in waiver.rules:
                finding.waived = True
                finding.waiver_reason = waiver.reason
                break


def iter_python_files(paths: Iterable[str]) -> Iterator[Path]:
    """Expand files/directories into a sorted stream of ``.py`` files."""
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            yield from sorted(
                p
                for p in path.rglob("*.py")
                if "__pycache__" not in p.parts
            )
        elif path.suffix == ".py":
            yield path
        elif not path.exists():
            raise FileNotFoundError(f"no such file or directory: {raw}")


def analyze_paths(
    paths: Iterable[str],
    rules: Optional[Sequence[Rule]] = None,
) -> List[Finding]:
    """Analyze every ``.py`` file under ``paths`` (files or directories)."""
    findings: List[Finding] = []
    for file_path in iter_python_files(paths):
        source = file_path.read_text(encoding="utf-8")
        findings.extend(
            analyze_source(source, path=file_path.as_posix(), rules=rules)
        )
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return findings
